"""Chaos harness: sweep faults over every message of a migration.

The paper's correctness argument (Section VI-C) is that the migration
protocol preserves two invariants *no matter where it is interrupted*:

* **R3** — at no point are there two operational instances of the migrated
  enclave (no forking via migration).
* **R4** — the enclave's monotonic counters never regress (no rollback via
  migration).

This module turns that argument into an executable experiment.  A fault-free
probe run records the complete message sequence of one enclave migration
(local attestation, ME-to-ME transfer, destination fetch, confirmation).
The sweep then replays the scenario once per (message, fault) pair — drop
the message, duplicate the request, or crash the source/destination machine
at that exact instant — lets the retry/resume machinery recover, and checks
R3 and R4 through ECALLs alone.

Run it as a module::

    PYTHONPATH=src python -m repro.faults.chaos
    PYTHONPATH=src python -m repro.faults.chaos --batched
    PYTHONPATH=src python -m repro.faults.chaos --disk
    PYTHONPATH=src python -m repro.faults.chaos --fleet
    PYTHONPATH=src python -m repro.faults.chaos --clone

``--disk`` sweeps the *storage* fault model instead of the network one:
every persisted artifact (source/destination migration journals, the ME's
A/B checkpoint, the sealed counter bundle, the application's sealed state)
crossed with every disk fault kind (torn write, lost write, bit rot, stale
read) at every protocol phase a matching disk op was observed in.  Each
scenario must end with R3/R4 intact AND a recoverable world: resume/restart
— with bounded heal-from-archive retries — reaches a serving instance that
reads back the newest sealed app state.  ``--smoke`` keeps one scenario per
(artifact, kind) cell, the slice ``make ci`` runs.

``--batched`` sweeps the migration-wave path instead: two enclaves move as
one ``migrate_group`` wave (stage, one ``flush_staged``/``transfer_batch``
exchange, per-enclave completion), and every leg — including the batch
transfer itself and mid-batch machine crashes — takes every fault kind.
R3/R4 are then checked *per enclave*: each counter must be served by exactly
one instance at exactly its pre-migration value.

``--fleet`` attacks the *control plane*: a four-machine fleet of eight
enclaves runs a multi-wave drain plan through
:class:`~repro.fleet.service.FleetService`, and the planner process is
killed at every journal boundary (plan persisted, wave started, wave
dispatched, wave marked done, plan complete) — plus ``parked`` variants
where the network blackholes the wave first, so the planner dies on top of
members stuck mid-transaction.  A fresh planner must then
``resume_plan()`` from the durable fleet journal alone and finish the
drain with R3/R4 intact per enclave, every member at its planned
destination, and the fleet journal cleared.

``--clone`` runs the *adversary*: the scripted cloning campaigns of
:mod:`repro.attacks.cloning` (second instance in the RESTORE window, a
stale-ME-epoch session replay, a double-joined ``transfer_batch`` wave, a
relaunch from a healed disk image) at every request leg of the guarded
protocol, optionally composed with a dropped message.  Every scenario must
end with R3/R4 intact, the clone detected AND fenced by the
single-instance registry, and the per-scenario detection latency (virtual
seconds) is reported in the summary.

Exit status 1 means at least one swept scenario violated an invariant.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.apps.counter_app import MigratableBenchEnclave
from repro.cloud.datacenter import DataCenter
from repro.core.protocol import (
    MigratableApp,
    install_all_migration_enclaves,
    reinstall_migration_enclave,
)
from repro.core.result import MigrationOutcome
from repro.core.retry import RetryPolicy
from repro.errors import MigrationError, ReproError
from repro.faults.injector import FaultInjector, ObservedMessage
from repro.faults.plan import DISK_FAULT_KINDS, FaultPlan
from repro.fleet import FleetConstraints, FleetService
from repro.sgx.identity import SigningKey

SOURCE = "machine-a"
DESTINATION = "machine-b"

#: The counter value the enclave reaches before migrating; R4 requires the
#: surviving instance to read back exactly this value.
COUNTER_TARGET = 3

#: Counter values for the two wave members in ``--batched`` sweeps; distinct
#: values so a cross-enclave state mix-up shows up as an R4 violation.
BATCH_COUNTER_TARGETS = (3, 5)

#: Small retry budget so scenarios where retries cannot help fail fast into
#: the resume path instead of burning sweep wall-clock.
SWEEP_POLICY = RetryPolicy(max_attempts=2, base_delay=0.05)

#: The fault kinds the sweep applies at every message position.  Duplicates
#: only make sense on request legs (the network layer re-delivers requests).
DEFAULT_KINDS = ("drop", "duplicate", "crash-source", "crash-dest")


@dataclass
class ChaosWorld:
    """One freshly built two-machine data center ready to migrate."""

    dc: DataCenter
    app: MigratableApp
    counter_id: int
    me_signer: SigningKey
    session_resumption: bool = False


@dataclass
class BatchChaosWorld:
    """Two machines, two migratable enclaves staged for one wave."""

    dc: DataCenter
    apps: list[MigratableApp]
    counter_ids: list
    me_signer: SigningKey
    session_resumption: bool = False


@dataclass
class ScenarioReport:
    """Outcome of one (message, fault) scenario."""

    kind: str
    seq: int
    msg_type: str | None
    direction: str
    migrate_outcome: str
    recovery_outcome: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_world(seed: int = 2018, session_resumption: bool = False) -> ChaosWorld:
    """Two machines, durable MEs on both, one counter enclave at
    ``COUNTER_TARGET`` on the source."""
    dc = DataCenter(name="chaos", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    install_all_migration_enclaves(
        dc, me_signer, durable=True, session_resumption=session_resumption
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    app = MigratableApp.deploy(
        dc, dc.machine(SOURCE), MigratableBenchEnclave, dev_key
    )
    app.retry_policy = SWEEP_POLICY
    enclave = app.start_new()
    counter_id, _ = enclave.ecall("create_counter")
    for _ in range(COUNTER_TARGET):
        enclave.ecall("increment_counter", counter_id)
    return ChaosWorld(
        dc=dc,
        app=app,
        counter_id=counter_id,
        me_signer=me_signer,
        session_resumption=session_resumption,
    )


def probe_message_sequence(
    seed: int = 2018, session_resumption: bool = False
) -> list[ObservedMessage]:
    """Record the full message trace of one fault-free migration."""
    world = build_world(seed, session_resumption)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    result = world.app.migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    world.dc.network.fault_injector = None
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"probe migration did not complete: {result.outcome}")
    return list(injector.trace)


def _plan_for(
    kind: str, leg: ObservedMessage, request_ordinal: int
) -> tuple[FaultPlan, list[str]]:
    """Build the one-fault plan for this scenario; returns the plan plus the
    machines it will crash (so recovery knows which MEs to reinstall).

    Drop/crash rules match every leg and fire on the ``seq``-th occurrence,
    which with a wildcard predicate is exactly the probe's global sequence
    number; duplicate rules match request legs only, so they count by the
    request's ordinal among requests.
    """
    plan = FaultPlan()
    if kind == "drop":
        return plan.drop(nth=leg.seq), []
    if kind == "duplicate":
        return plan.duplicate(direction="request", nth=request_ordinal), []
    if kind == "crash-source":
        return plan.crash_machine(SOURCE, nth=leg.seq), [SOURCE]
    if kind == "crash-dest":
        return plan.crash_machine(DESTINATION, nth=leg.seq), [DESTINATION]
    raise ValueError(f"unknown fault kind {kind!r}")


def _serving_instances(world: ChaosWorld) -> list[tuple]:
    """Every ``(enclave, counter value)`` currently serving the tracked
    counter — the ECALL-only probe R3/R4 and the app-state check share."""
    serving: list[tuple] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            try:
                value = enclave.ecall("read_counter", world.counter_id)
            except ReproError:
                continue
            serving.append((enclave, value))
    return serving


def check_invariants(world: ChaosWorld) -> list[str]:
    """R3/R4 via ECALLs only: an *operational instance* is a loaded, alive
    enclave of the application class that serves the counter read.  Frozen,
    uninitialized, or crashed instances refuse the read and do not count."""
    violations: list[str] = []
    serving = [value for _, value in _serving_instances(world)]
    if len(serving) > 1:
        violations.append(f"R3: {len(serving)} operational instances survive")
    if not serving:
        violations.append("liveness: no operational instance after recovery")
    else:
        value = serving[0]
        if value < COUNTER_TARGET:
            violations.append(
                f"R4: counter regressed to {value} (expected {COUNTER_TARGET})"
            )
        elif value > COUNTER_TARGET:
            violations.append(
                f"counter advanced to {value} without increments "
                f"(expected {COUNTER_TARGET})"
            )
    return violations


def run_scenario(
    kind: str,
    leg: ObservedMessage,
    request_ordinal: int,
    seed: int = 2018,
    session_resumption: bool = False,
) -> ScenarioReport:
    """Fresh world, one fault at ``leg``, recovery, invariant check."""
    world = build_world(seed, session_resumption)
    dc, app = world.dc, world.app
    plan, crashed = _plan_for(kind, leg, request_ordinal)
    dc.network.fault_injector = FaultInjector(
        plan=plan,
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    try:
        result = app.migrate(dc.machine(DESTINATION), migrate_vm=False)
        migrate_outcome = result.outcome.value
        completed = result.outcome is MigrationOutcome.COMPLETED
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False

    # Recovery: the fault window is over, the operator reinstalls the ME on
    # any crashed machine (its durable checkpoint survives on disk), and the
    # application resumes the journalled migration.
    dc.network.fault_injector = None
    recovery_outcome = "not-needed"
    if not completed:
        for name in crashed:
            reinstall_migration_enclave(
                dc,
                dc.machine(name),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        try:
            resumed = app.resume(migrate_vm=False)
            recovery_outcome = resumed.outcome.value
        except ReproError as exc:
            recovery_outcome = f"raised:{type(exc).__name__}"

    report = ScenarioReport(
        kind=kind,
        seq=leg.seq,
        msg_type=leg.msg_type,
        direction=leg.direction,
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
    )
    if recovery_outcome.startswith("raised:"):
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_invariants(world))
    return report


def sweep(
    seed: int = 2018,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    session_resumption: bool = False,
) -> list[ScenarioReport]:
    """Every message of the migration sequence under every fault kind."""
    trace = probe_message_sequence(seed, session_resumption)
    reports: list[ScenarioReport] = []
    request_ordinal = 0
    for leg in trace:
        for kind in kinds:
            if kind == "duplicate" and leg.direction != "request":
                continue
            reports.append(
                run_scenario(kind, leg, request_ordinal, seed, session_resumption)
            )
        if leg.direction == "request":
            request_ordinal += 1
    return reports


# ------------------------------------------------------------------ batched
def build_batched_world(
    seed: int = 2018, session_resumption: bool = False
) -> BatchChaosWorld:
    """Two machines, durable MEs, two counter enclaves on the source with
    distinct counter values (``BATCH_COUNTER_TARGETS``)."""
    dc = DataCenter(name="chaos", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    install_all_migration_enclaves(
        dc, me_signer, durable=True, session_resumption=session_resumption
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    apps: list[MigratableApp] = []
    counter_ids = []
    for index, target in enumerate(BATCH_COUNTER_TARGETS):
        app = MigratableApp.deploy(
            dc,
            dc.machine(SOURCE),
            MigratableBenchEnclave,
            dev_key,
            vm_name=f"chaos-vm-{index}",
            app_name=f"chaos-app-{index}",
        )
        app.retry_policy = SWEEP_POLICY
        enclave = app.start_new()
        # Counter ids are sequential *per enclave*, so both apps would get
        # id 0; padding app ``index`` with ``index`` extra counters makes its
        # tracked counter id unique, letting the invariant check attribute a
        # surviving instance to its app by the id set it serves.
        for _ in range(index):
            enclave.ecall("create_counter")
        counter_id, _ = enclave.ecall("create_counter")
        for _ in range(target):
            enclave.ecall("increment_counter", counter_id)
        apps.append(app)
        counter_ids.append(counter_id)
    return BatchChaosWorld(
        dc=dc,
        apps=apps,
        counter_ids=counter_ids,
        me_signer=me_signer,
        session_resumption=session_resumption,
    )


def probe_batched_message_sequence(
    seed: int = 2018, session_resumption: bool = False
) -> list[ObservedMessage]:
    """Record the full message trace of one fault-free migration wave."""
    world = build_batched_world(seed, session_resumption)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    results = MigratableApp.migrate_group(
        world.apps, world.dc.machine(DESTINATION), migrate_vm=False
    )
    world.dc.network.fault_injector = None
    for result in results:
        if result.outcome is not MigrationOutcome.COMPLETED:
            raise AssertionError(
                f"probe wave did not complete: {result.outcome}"
            )
    return list(injector.trace)


def check_batched_invariants(world: BatchChaosWorld) -> list[str]:
    """R3/R4 per wave member: each app's counter must be served by exactly
    one operational instance, at exactly its pre-migration value.

    An instance belongs to app ``i`` when it serves app ``i``'s tracked
    counter id but no *higher* tracked id (ids are padded to be strictly
    increasing across apps, so the highest readable id identifies the app).
    """
    violations: list[str] = []
    # Probe every alive enclave once for each tracked id.
    readings: list[dict[int, int]] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            served: dict[int, int] = {}
            for counter_id in world.counter_ids:
                try:
                    served[counter_id] = enclave.ecall("read_counter", counter_id)
                except ReproError:
                    continue
            if served:
                readings.append(served)
    for index, counter_id in enumerate(world.counter_ids):
        target = BATCH_COUNTER_TARGETS[index]
        higher = set(world.counter_ids[index + 1 :])
        serving = [
            served[counter_id]
            for served in readings
            if counter_id in served and not (higher & served.keys())
        ]
        label = f"enclave {index}"
        if len(serving) > 1:
            violations.append(
                f"R3: {len(serving)} operational instances serve {label}"
            )
        if not serving:
            violations.append(
                f"liveness: no operational instance serves {label}"
            )
        else:
            value = serving[0]
            if value < target:
                violations.append(
                    f"R4: {label} counter regressed to {value} (expected {target})"
                )
            elif value > target:
                violations.append(
                    f"{label} counter advanced to {value} without increments "
                    f"(expected {target})"
                )
    return violations


def run_batched_scenario(
    kind: str,
    leg: ObservedMessage,
    request_ordinal: int,
    seed: int = 2018,
    session_resumption: bool = False,
) -> ScenarioReport:
    """Fresh world, one fault somewhere in the wave, per-app recovery,
    per-app invariant check."""
    world = build_batched_world(seed, session_resumption)
    dc = world.dc
    plan, crashed = _plan_for(kind, leg, request_ordinal)
    dc.network.fault_injector = FaultInjector(
        plan=plan,
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    try:
        results = MigratableApp.migrate_group(
            world.apps, dc.machine(DESTINATION), migrate_vm=False
        )
        outcomes = [r.outcome for r in results]
        migrate_outcome = "+".join(o.value for o in outcomes)
        completed = all(o is MigrationOutcome.COMPLETED for o in outcomes)
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False

    # Recovery mirrors the sequential sweep, but drives each wave member's
    # journal individually — a crash mid-batch must leave every transaction
    # independently resumable.
    dc.network.fault_injector = None
    recovery_outcome = "not-needed"
    if not completed:
        for name in crashed:
            reinstall_migration_enclave(
                dc,
                dc.machine(name),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        per_app: list[str] = []
        for app in world.apps:
            try:
                resumed = app.resume(migrate_vm=False)
                per_app.append(resumed.outcome.value)
            except MigrationError as exc:
                # A member whose migration already finished (e.g. the fault
                # hit a sibling's leg) has a cleared journal; that is success,
                # not a recovery failure.  If the fault then killed its new
                # host, the enclave died *after* the protocol ended — an
                # ordinary enclave crash, recovered by a restart from sealed
                # state, not by migration resume.
                if "no migration in progress" in str(exc):
                    if app.enclave is not None and app.enclave.alive:
                        per_app.append("already-complete")
                    else:
                        try:
                            app.restart()
                            per_app.append("restarted")
                        except ReproError as restart_exc:
                            per_app.append(
                                f"raised:{type(restart_exc).__name__}"
                            )
                else:
                    per_app.append(f"raised:{type(exc).__name__}")
            except ReproError as exc:
                per_app.append(f"raised:{type(exc).__name__}")
        recovery_outcome = "+".join(per_app)

    report = ScenarioReport(
        kind=kind,
        seq=leg.seq,
        msg_type=leg.msg_type,
        direction=leg.direction,
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
    )
    if "raised:" in recovery_outcome:
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_batched_invariants(world))
    return report


def sweep_batched(
    seed: int = 2018,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    session_resumption: bool = False,
) -> list[ScenarioReport]:
    """Every message of the wave sequence under every fault kind."""
    trace = probe_batched_message_sequence(seed, session_resumption)
    reports: list[ScenarioReport] = []
    request_ordinal = 0
    for leg in trace:
        for kind in kinds:
            if kind == "duplicate" and leg.direction != "request":
                continue
            reports.append(
                run_batched_scenario(
                    kind, leg, request_ordinal, seed, session_resumption
                )
            )
        if leg.direction == "request":
            request_ordinal += 1
    return reports


# --------------------------------------------------------------------- disk
#: Every persisted artifact of one migration, as ``(name, machine, glob)``.
#: The glob covers the blob itself plus its rename temps, A/B slots, and
#: pointer record, so a fault can land on any piece of the write protocol.
DISK_ARTIFACTS = (
    ("journal-source", SOURCE, "app/migration_txn*"),
    ("journal-dest", DESTINATION, "app/migration_txn*"),
    ("me-checkpoint-source", SOURCE, "migration-service/me_checkpoint*"),
    ("me-checkpoint-dest", DESTINATION, "migration-service/me_checkpoint*"),
    ("counter-bundle-source", SOURCE, "app/miglib_state*"),
    ("counter-bundle-dest", DESTINATION, "app/miglib_state*"),
    ("app-state", SOURCE, "app/app_state*"),
)

#: Sealed application-state blob (the "persistent state" the paper migrates):
#: v1 lands before the fault window opens, v2 inside it, and the sweep's
#: final check demands that the surviving instance read back **v2** — a torn
#: or rotted blob must be healable, and a stale read must not stick.
APP_STATE_PATH = "app_state"
APP_STATE_V1 = b"app-state-v1"
APP_STATE_V2 = b"app-state-v2-durable"

#: Bounded self-healing: how many restore-newest-archive-and-retry rounds
#: recovery may take before the scenario counts as unrecoverable.
HEAL_ATTEMPTS = 3


@dataclass(frozen=True)
class DiskScenario:
    """One planned disk-fault experiment: arm ``kind`` on the ``nth``
    matching storage op of ``pattern`` on ``machine``; for write-side kinds
    (whose damage only materializes at power loss) also crash that machine
    at message leg ``crash_at`` — or right after the protocol
    (``post_crash``) when no leg follows the marked write."""

    artifact: str
    machine: str
    pattern: str
    kind: str
    phase: str
    nth: int
    crash_at: int | None
    post_crash: bool


@dataclass
class DiskScenarioReport:
    """Outcome of one (artifact, fault kind, protocol phase) scenario."""

    artifact: str
    kind: str
    phase: str
    nth: int
    fired: int
    migrate_outcome: str
    recovery_outcome: str
    corrupt_reads: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _store_app_state(world: ChaosWorld, plaintext: bytes) -> None:
    blob = world.app.enclave.ecall("seal", plaintext)
    world.app.app.store(APP_STATE_PATH, blob)


def _all_storages(world: ChaosWorld) -> list:
    return [machine.storage for machine in world.dc.machines.values()]


def _phase_of(msg_seq: int, trace: list[ObservedMessage]) -> str:
    """Label a disk op by the protocol step it happened inside.

    An op whose next leg is a bare reply ran *inside the handler* of the
    preceding request (e.g. an ME checkpoint write), so it is labelled by
    that request's message type rather than the anonymous reply."""
    if msg_seq <= 0:
        return "pre-protocol"
    if msg_seq >= len(trace):
        return "post-protocol"
    leg = trace[msg_seq]
    if leg.msg_type is None and leg.direction == "response" and msg_seq > 0:
        prev = trace[msg_seq - 1]
        return f"{prev.msg_type or 'reply'}/handling"
    return f"{leg.msg_type or 'reply'}/{leg.direction}"


def probe_disk_operations(seed: int = 2018) -> tuple[list[ObservedMessage], list]:
    """Fault-free run of the disk scenario script: seal v1, open the fault
    window, seal v2, migrate, read the app blob back.  Returns the message
    trace and every disk op observed inside the window."""
    world = build_world(seed)
    _store_app_state(world, APP_STATE_V1)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    injector.attach_disk(_all_storages(world))
    _store_app_state(world, APP_STATE_V2)
    result = world.app.migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"disk probe migration did not complete: {result.outcome}")
    # The verification read is part of the probed script, so read-kind
    # scenarios can target it (phase "post-protocol").
    world.dc.machine(SOURCE).storage.read(f"app/{APP_STATE_PATH}")
    world.dc.network.fault_injector = None
    injector.detach_disk(_all_storages(world))
    return list(injector.trace), list(injector.disk_trace)


def enumerate_disk_scenarios(seed: int = 2018) -> list[DiskScenario]:
    """Cross every persisted artifact with every disk fault kind, one
    scenario per distinct protocol phase the probe saw a matching op in.

    Artifacts that are never *read* inside the protocol (the ME checkpoint,
    the sealed counter bundle — both only read while recovering) get
    recovery-forced read scenarios instead: arm the fault on the first
    matching read and crash the artifact's machine at each distinct
    protocol step, so recovery itself must read through the damage.
    """
    trace, disk_ops = probe_disk_operations(seed)
    anchors: list[ObservedMessage] = []
    seen_types: set[str] = set()
    for leg in trace:
        if leg.direction != "request" or leg.msg_type is None:
            continue
        if leg.msg_type in seen_types:
            continue
        seen_types.add(leg.msg_type)
        anchors.append(leg)
    scenarios: list[DiskScenario] = []
    for artifact, machine, pattern in DISK_ARTIFACTS:
        for kind, op_name in DISK_FAULT_KINDS.items():
            ops = [
                op
                for op in disk_ops
                if op.op == op_name
                and op.machine == machine
                and fnmatch(op.path, pattern)
            ]
            seen_phases: set[str] = set()
            for ordinal, op in enumerate(ops):
                phase = _phase_of(op.msg_seq, trace)
                if phase in seen_phases:
                    continue
                seen_phases.add(phase)
                needs_crash = kind in ("torn_write", "lost_write")
                crash_at = (
                    op.msg_seq if needs_crash and op.msg_seq < len(trace) else None
                )
                scenarios.append(
                    DiskScenario(
                        artifact=artifact,
                        machine=machine,
                        pattern=pattern,
                        kind=kind,
                        phase=phase,
                        nth=ordinal,
                        crash_at=crash_at,
                        post_crash=needs_crash and crash_at is None,
                    )
                )
            if not seen_phases and op_name == "read":
                for leg in anchors:
                    scenarios.append(
                        DiskScenario(
                            artifact=artifact,
                            machine=machine,
                            pattern=pattern,
                            kind=kind,
                            phase=f"recovery@{leg.msg_type}",
                            nth=0,
                            crash_at=leg.seq,
                            post_crash=False,
                        )
                    )
    return scenarios


def _build_disk_plan(scenario: DiskScenario) -> FaultPlan:
    plan = FaultPlan()
    getattr(plan, scenario.kind)(
        scenario.pattern, machine=scenario.machine, nth=scenario.nth
    )
    if scenario.crash_at is not None:
        plan.crash_machine(scenario.machine, nth=scenario.crash_at)
    return plan


def _recover_world(
    world: ChaosWorld, crashed: list[str], scenario: DiskScenario
) -> list[str]:
    """Reinstall MEs on crashed machines, then resume/restart with bounded
    self-healing: when a step dies with a typed error, restore the faulted
    artifact's newest archived version (the backup/scrub an operator would
    reach for) and try again."""
    dc, app = world.dc, world.app
    steps: list[str] = []
    for name in crashed:
        reinstall_migration_enclave(
            dc,
            dc.machine(name),
            world.me_signer,
            session_resumption=world.session_resumption,
        )
    for attempt in range(HEAL_ATTEMPTS):
        try:
            steps.append(app.resume(migrate_vm=False).outcome.value)
            return steps
        except MigrationError as exc:
            failure: ReproError = exc
            if "no migration in progress" in str(exc):
                if app.enclave is not None and app.enclave.alive:
                    steps.append("already-complete")
                    return steps
                try:
                    app.restart()
                    steps.append("restarted")
                    return steps
                except ReproError as restart_exc:
                    failure = restart_exc
        except ReproError as exc:
            failure = exc
        storage = dc.machine(scenario.machine).storage
        healed = storage.heal(scenario.pattern)
        if healed and "me_checkpoint" in scenario.pattern:
            # A healed checkpoint only helps a *freshly booted* ME.
            reinstall_migration_enclave(
                dc,
                dc.machine(scenario.machine),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        label = f"raised:{type(failure).__name__}"
        if healed:
            label += f"->healed[{len(healed)}]"
        steps.append(label)
        if not healed and attempt > 0:
            break  # nothing left to heal and retrying alone did not help
    return steps


def _check_app_state(world: ChaosWorld) -> list[str]:
    """The sealed app blob must decrypt, on the one surviving instance, to
    the *newest* write — healing the disk when the fault ate it.  Skipped
    when R3/liveness already failed (those violations say it all)."""
    serving = _serving_instances(world)
    if len(serving) != 1:
        return []
    enclave = serving[0][0]
    storage = world.dc.machine(SOURCE).storage
    path = f"app/{APP_STATE_PATH}"
    failure = "app state: never checked"
    for _ in range(HEAL_ATTEMPTS):
        try:
            plaintext, _ = enclave.ecall("unseal", storage.read(path))
            if plaintext == APP_STATE_V2:
                return []
            failure = "app state reads back an old version, not the newest write"
        except ReproError as exc:
            failure = f"app state unreadable: {type(exc).__name__}"
        storage.heal(f"{path}*")
    return [failure]


def run_disk_scenario(scenario: DiskScenario, seed: int = 2018) -> DiskScenarioReport:
    """Fresh world, one armed disk fault (plus its crash, for write-side
    kinds), recovery with bounded healing, R3/R4 + recoverability checks."""
    world = build_world(seed)
    dc, app = world.dc, world.app
    _store_app_state(world, APP_STATE_V1)
    injector = FaultInjector(
        plan=_build_disk_plan(scenario),
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    dc.network.fault_injector = injector
    injector.attach_disk(_all_storages(world))
    _store_app_state(world, APP_STATE_V2)
    crashed: list[str] = [scenario.machine] if scenario.crash_at is not None else []
    try:
        result = app.migrate(dc.machine(DESTINATION), migrate_vm=False)
        migrate_outcome = result.outcome.value
        completed = result.outcome is MigrationOutcome.COMPLETED
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False
    dc.network.fault_injector = None
    if scenario.post_crash:
        # The marked write had no later protocol step to crash at: pull the
        # plug the instant the protocol finishes.
        dc.machine(scenario.machine).crash()
        crashed = [scenario.machine]
        completed = False
    if DISK_FAULT_KINDS[scenario.kind] != "read":
        # Write-side damage is already recorded in the storage state; the
        # disk hook stays attached only for read kinds, whose whole point is
        # that *recovery* reads through the armed fault.
        injector.detach_disk(_all_storages(world))
    recovery_outcome = "not-needed"
    if not completed:
        recovery_outcome = "+".join(_recover_world(world, crashed, scenario))
    report = DiskScenarioReport(
        artifact=scenario.artifact,
        kind=scenario.kind,
        phase=scenario.phase,
        nth=scenario.nth,
        fired=len(injector.disk_fired),
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
        corrupt_reads=sum(
            machine.storage.journal_corruption_count
            for machine in dc.machines.values()
        ),
    )
    # Intermediate raises are fine — that is what the heal-and-retry loop is
    # for; only a *final* raise means the world stayed unrecovered.
    if recovery_outcome.split("+")[-1].startswith("raised:"):
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_invariants(world))
    report.violations.extend(_check_app_state(world))
    injector.detach_disk(_all_storages(world))
    return report


def sweep_disk(seed: int = 2018, smoke: bool = False) -> list[DiskScenarioReport]:
    """Every persisted artifact x every disk fault kind x every protocol
    phase the probe saw.  ``smoke`` keeps only the first scenario per
    (artifact, kind) cell — the CI slice."""
    scenarios = enumerate_disk_scenarios(seed)
    covered = {(s.artifact, s.kind) for s in scenarios}
    missing = [
        (artifact, kind)
        for artifact, _, _ in DISK_ARTIFACTS
        for kind in DISK_FAULT_KINDS
        if (artifact, kind) not in covered
    ]
    if missing:
        raise AssertionError(f"disk sweep lost (artifact, kind) coverage: {missing}")
    if smoke:
        first: dict[tuple[str, str], DiskScenario] = {}
        for scenario in scenarios:
            first.setdefault((scenario.artifact, scenario.kind), scenario)
        scenarios = list(first.values())
    return [run_disk_scenario(scenario, seed) for scenario in scenarios]


def _main_disk(seed: int, smoke: bool) -> int:
    scenarios = enumerate_disk_scenarios(seed)
    slice_note = " (smoke slice: first scenario per cell)" if smoke else ""
    print(
        f"disk fault sweep: {len(scenarios)} scenarios over "
        f"{len(DISK_ARTIFACTS)} artifacts x {len(DISK_FAULT_KINDS)} fault kinds "
        f"(seed {seed}){slice_note}"
    )
    reports = sweep_disk(seed, smoke=smoke)
    failures = [r for r in reports if not r.ok]
    unfired = sum(1 for r in reports if not r.fired)
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        extras = f" corrupt-reads={report.corrupt_reads}" if report.corrupt_reads else ""
        print(
            f"  [{marker:>4}] {report.artifact:<20} {report.kind:<11} "
            f"@ {report.phase:<24} fired={report.fired} "
            f"migrate={report.migrate_outcome:<28} "
            f"recovery={report.recovery_outcome}{extras}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    print(
        f"{len(reports)} scenarios, {len(failures)} invariant violations, "
        f"{unfired} armed faults never reached "
        f"(R3/R4 intact and world recoverable in every scenario)"
        if not failures
        else f"{len(reports)} scenarios, {len(failures)} invariant violations"
    )
    return 1 if failures else 0


# -------------------------------------------------------------------- fleet
FLEET_MACHINES = 4
FLEET_APPS = 8
FLEET_DRAIN_TARGET = "fleet-0"


class _PlannerKilled(Exception):
    """The simulated planner-process death (not a ReproError: the planner
    dying is an infrastructure event, not a protocol outcome)."""


@dataclass
class FleetChaosWorld:
    dc: DataCenter
    service: FleetService
    apps: list[MigratableApp]
    counter_ids: list[int]
    counter_targets: list[int]


def build_fleet_world(seed: int = 2018, dispatch: str = "serial") -> FleetChaosWorld:
    """Four machines, durable MEs everywhere, eight counter enclaves placed
    round-robin and registered with a :class:`FleetService` whose per-wave
    cap of one move forces the drain into multiple waves (so there are
    genuinely distinct wave boundaries to die at).

    ``dispatch="concurrent"`` (or ``"pipelined"``) builds the
    overlapping-group variant instead: the per-wave caps are relaxed so the
    whole drain is ONE wave with several destination groups, and the service
    records/replays them on the discrete-event scheduler — the planner then
    dies *between group dispatches* (the record phase's journal boundaries).
    """
    dc = DataCenter(name="chaos-fleet", seed=seed)
    for index in range(FLEET_MACHINES):
        dc.add_machine(f"fleet-{index}")
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    hosts = install_all_migration_enclaves(dc, me_signer, durable=True)
    constraints = (
        FleetConstraints(machine_capacity=FLEET_APPS, max_moves_per_machine=1)
        if dispatch == "serial"
        else FleetConstraints(
            machine_capacity=FLEET_APPS,
            max_moves_per_machine=FLEET_APPS,
            tenant_wave_quota=FLEET_APPS,
        )
    )
    service = FleetService(
        dc=dc,
        hosts=hosts,
        constraints=constraints,
        retry_policy=SWEEP_POLICY,
        dispatch=dispatch,
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    apps: list[MigratableApp] = []
    counter_ids: list[int] = []
    counter_targets: list[int] = []
    for index in range(FLEET_APPS):
        app = MigratableApp.deploy(
            dc,
            dc.machine(f"fleet-{index % FLEET_MACHINES}"),
            MigratableBenchEnclave,
            dev_key,
            vm_name=f"chaos-fleet-vm-{index}",
            app_name=f"chaos-fleet-app-{index}",
        )
        app.retry_policy = SWEEP_POLICY
        enclave = app.start_new()
        # Same padded-id trick as the batched world, fleet-wide: app
        # ``index`` serves tracked counter id ``index`` and nothing higher.
        for _ in range(index):
            enclave.ecall("create_counter")
        counter_id, _ = enclave.ecall("create_counter")
        target = 2 + index
        for _ in range(target):
            enclave.ecall("increment_counter", counter_id)
        service.register(
            app,
            tenant=f"tenant-{index % 2}",
            anti_affinity_group="chaos-pair" if index < 2 else None,
        )
        apps.append(app)
        counter_ids.append(counter_id)
        counter_targets.append(target)
    return FleetChaosWorld(
        dc=dc,
        service=service,
        apps=apps,
        counter_ids=counter_ids,
        counter_targets=counter_targets,
    )


def check_fleet_invariants(world: FleetChaosWorld) -> list[str]:
    """R3/R4 per fleet member, via the padded-counter-id attribution used by
    :func:`check_batched_invariants`, generalized to eight enclaves."""
    violations: list[str] = []
    readings: list[dict[int, int]] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            served: dict[int, int] = {}
            for counter_id in world.counter_ids:
                try:
                    served[counter_id] = enclave.ecall("read_counter", counter_id)
                except ReproError:
                    continue
            if served:
                readings.append(served)
    for index, counter_id in enumerate(world.counter_ids):
        target = world.counter_targets[index]
        higher = set(world.counter_ids[index + 1 :])
        serving = [
            served[counter_id]
            for served in readings
            if counter_id in served and not (higher & served.keys())
        ]
        label = f"enclave {index}"
        if len(serving) > 1:
            violations.append(
                f"R3: {len(serving)} operational instances serve {label}"
            )
        if not serving:
            violations.append(
                f"liveness: no operational instance serves {label}"
            )
        elif serving[0] != target:
            word = "regressed" if serving[0] < target else "advanced"
            violations.append(
                f"R4: {label} counter {word} to {serving[0]} "
                f"(expected {target})"
            )
    return violations


@dataclass(frozen=True)
class FleetScenario:
    """Kill the planner at one boundary: ``stage`` names it (``planned``,
    ``started``, ``group``, ``dispatched``, ``done``, ``complete``),
    ``wave`` the wave index (-1 for the plan-level boundaries), ``skip``
    how many matching boundaries to let pass first (so a multi-group wave
    can die between its second and third group, not only its first).
    ``parked`` additionally blackholes the network from the wave's start,
    so the planner dies on top of members whose transactions are stuck
    mid-flight.  ``dispatch`` picks the world variant to kill."""

    stage: str
    wave: int
    parked: bool = False
    dispatch: str = "serial"
    skip: int = 0

    @property
    def label(self) -> str:
        suffix = f"#{self.skip + 1}" if self.skip else ""
        if self.parked:
            suffix += "+parked"
        if self.dispatch != "serial":
            suffix += f"+{self.dispatch}"
        return f"{self.stage}:{self.wave}{suffix}"


@dataclass
class FleetScenarioReport:
    scenario: FleetScenario
    apply_outcome: str
    recovery_outcome: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def enumerate_fleet_scenarios(seed: int = 2018) -> list[FleetScenario]:
    """One scenario per journal boundary of the drain plan, plus a parked
    variant per wave, plus concurrent- and pipelined-dispatch variants where
    the planner dies mid-overlapping-wave (the relaxed-cap world drains in
    one wave with several destination groups) — for pipelined, between the
    per-group journal boundaries the record phase writes."""
    world = build_fleet_world(seed)
    n_waves = len(world.service.plan_drain(FLEET_DRAIN_TARGET).waves)
    scenarios = [FleetScenario("planned", -1)]
    for wave in range(n_waves):
        scenarios.append(FleetScenario("started", wave))
        scenarios.append(FleetScenario("dispatched", wave, parked=True))
        scenarios.append(FleetScenario("dispatched", wave))
        scenarios.append(FleetScenario("done", wave))
    scenarios.append(FleetScenario("complete", -1))
    scenarios.append(FleetScenario("started", 0, dispatch="concurrent"))
    scenarios.append(FleetScenario("dispatched", 0, dispatch="concurrent"))
    scenarios.append(
        FleetScenario("dispatched", 0, parked=True, dispatch="concurrent")
    )
    scenarios.append(FleetScenario("started", 0, dispatch="pipelined"))
    scenarios.append(FleetScenario("group", 0, dispatch="pipelined"))
    scenarios.append(FleetScenario("group", 0, skip=1, dispatch="pipelined"))
    scenarios.append(
        FleetScenario("dispatched", 0, parked=True, dispatch="pipelined")
    )
    scenarios.append(FleetScenario("done", 0, dispatch="pipelined"))
    return scenarios


def run_fleet_scenario(
    scenario: FleetScenario, seed: int = 2018
) -> FleetScenarioReport:
    """Fresh fleet, drain plan, planner killed at the scenario's boundary,
    fresh planner resumes from the durable fleet journal; then R3/R4 per
    member, planned placement reached, and journal cleared."""
    world = build_fleet_world(seed, dispatch=scenario.dispatch)
    dc, service = world.dc, world.service
    plan = service.plan_drain(FLEET_DRAIN_TARGET)
    destinations = {move.app_name: move.destination for move in plan.moves}
    matched = 0

    def boundary_hook(stage: str, wave: int) -> None:
        nonlocal matched
        if scenario.parked and stage == "started" and wave == scenario.wave:
            dc.network.fault_injector = FaultInjector(
                plan=FaultPlan().drop(max_triggers=1_000_000),
                rng=dc.rng.child("chaos-faults"),
                machines=dict(dc.machines),
                meter=dc.meter,
            )
        if stage == scenario.stage and wave == scenario.wave:
            matched += 1
            if matched > scenario.skip:
                raise _PlannerKilled(scenario.label)

    try:
        service.apply(plan, boundary_hook=boundary_hook)
        apply_outcome = "completed-unexpectedly"
    except _PlannerKilled:
        apply_outcome = f"killed@{scenario.label}"
    except ReproError as exc:
        apply_outcome = f"raised:{type(exc).__name__}"
    finally:
        # The planner is dead; the network partition (if any) heals before
        # the operator restarts it.
        dc.network.fault_injector = None

    # Planner restart: a brand-new service over the same data center (same
    # durable disks, same member registry) — nothing survives from the dead
    # process but what the fleet journal persisted.
    restarted = FleetService(
        dc=dc,
        hosts=service.hosts,
        constraints=service.constraints,
        retry_policy=SWEEP_POLICY,
        members=dict(service.members),
        dispatch=service.dispatch,
    )
    try:
        result = restarted.resume_plan()
        recovery_outcome = (
            f"resumed:{len(result.waves)}-waves"
            f"+{result.skipped_waves}-skipped"
        )
        if not result.completed:
            recovery_outcome += ":INCOMPLETE"
    except ReproError as exc:
        recovery_outcome = f"raised:{type(exc).__name__}"

    report = FleetScenarioReport(
        scenario=scenario,
        apply_outcome=apply_outcome,
        recovery_outcome=recovery_outcome,
    )
    if apply_outcome == "completed-unexpectedly":
        report.violations.append("planner kill hook never fired")
    if recovery_outcome.startswith("raised:") or recovery_outcome.endswith(
        ":INCOMPLETE"
    ):
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_fleet_invariants(world))
    for move in plan.moves:
        actual = service.members[move.app_name].machine
        if actual != move.destination:
            report.violations.append(
                f"placement: {move.app_name} at {actual}, "
                f"plan said {move.destination}"
            )
    if restarted.journal().read() is not None:
        report.violations.append("fleet journal not cleared after resume")
    return report


def sweep_fleet(seed: int = 2018, smoke: bool = False) -> list[FleetScenarioReport]:
    """Every planner-kill boundary of the drain plan; ``smoke`` keeps the
    first scenario per (stage, parked, concurrent) kind — the CI slice."""
    scenarios = enumerate_fleet_scenarios(seed)
    if smoke:
        first: dict[tuple[str, bool, str], FleetScenario] = {}
        for scenario in scenarios:
            first.setdefault(
                (scenario.stage, scenario.parked, scenario.dispatch), scenario
            )
        scenarios = list(first.values())
    return [run_fleet_scenario(scenario, seed) for scenario in scenarios]


def _main_fleet(seed: int, smoke: bool) -> int:
    scenarios = enumerate_fleet_scenarios(seed)
    slice_note = " (smoke slice: first scenario per boundary kind)" if smoke else ""
    print(
        f"fleet planner-kill sweep: {len(scenarios)} boundaries over a "
        f"{FLEET_MACHINES}-machine / {FLEET_APPS}-enclave drain "
        f"(seed {seed}){slice_note}"
    )
    reports = sweep_fleet(seed, smoke=smoke)
    failures = [r for r in reports if not r.ok]
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        print(
            f"  [{marker:>4}] kill@{report.scenario.label:<20} "
            f"apply={report.apply_outcome:<28} "
            f"recovery={report.recovery_outcome}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    print(
        f"{len(reports)} scenarios, {len(failures)} invariant violations "
        f"(R3/R4 per member, planned placement reached, journal cleared)"
    )
    return 1 if failures else 0


# -------------------------------------------------------------------- clone
@dataclass(frozen=True)
class CloneScenario:
    """One scripted cloning-campaign experiment: launch the clone at
    message ``window_seq`` of the victim protocol (``window`` is its
    human-readable label), optionally composing a network ``fault`` at
    ``fault_seq``.  Healed-disk campaigns have no message window
    (``window_seq`` is -1); their ``window`` names the healed artifact."""

    campaign: str
    window: str
    window_seq: int
    fault: str
    fault_seq: int


def enumerate_clone_scenarios(seed: int = 2018) -> list[CloneScenario]:
    """The full clone-campaign grid for one seed.

    Every *request* leg of the guarded probe traces is a cloning window
    (replies deliver into a blocked sender, so the request positions are
    where a host-controlled adversary can act).  Drop variants re-race the
    same window while an earlier protocol leg is lost and the retry/resume
    machinery is mid-recovery; the healed-disk campaign crosses its three
    artifacts with a clean and a lossy network.
    """
    from repro.attacks import cloning

    scenarios: list[CloneScenario] = []

    restore = [
        leg for leg in cloning.probe_restore_trace(seed) if leg.direction == "request"
    ]
    for index, leg in enumerate(restore):
        label = f"{leg.seq}:{leg.msg_type or 'msg'}"
        scenarios.append(
            CloneScenario("restore-window", label, leg.seq, "none", -1)
        )
        if index > 0:
            scenarios.append(
                CloneScenario(
                    "restore-window", label, leg.seq, "drop", restore[index - 1].seq
                )
            )

    wave = [
        leg for leg in cloning.probe_wave_trace(seed) if leg.direction == "request"
    ]
    for index, leg in enumerate(wave):
        label = f"{leg.seq}:{leg.msg_type or 'msg'}"
        scenarios.append(
            CloneScenario("wave-double-join", label, leg.seq, "none", -1)
        )
        if index > 0:
            scenarios.append(
                CloneScenario(
                    "wave-double-join", label, leg.seq, "drop", wave[index - 1].seq
                )
            )

    stale = [
        leg
        for leg in cloning.probe_stale_session_trace(seed)
        if leg.direction == "request"
    ]
    for leg in stale:
        label = f"{leg.seq}:{leg.msg_type or 'msg'}"
        scenarios.append(
            CloneScenario("stale-session-replay", label, leg.seq, "none", -1)
        )

    for window in ("tombstone-heal", "replay-prefreeze", "me-checkpoint"):
        for fault in ("none", "drop"):
            scenarios.append(CloneScenario("healed-disk", window, -1, fault, -1))
    return scenarios


def run_clone_scenario(scenario: CloneScenario, seed: int = 2018):
    """Fresh world, one scripted campaign, detection + invariant verdict.
    Returns a :class:`repro.attacks.cloning.CloneCampaignReport`."""
    from repro.attacks import cloning

    if scenario.campaign == "restore-window":
        return cloning.run_restore_window_campaign(
            scenario.window_seq,
            fault=scenario.fault,
            fault_seq=scenario.fault_seq,
            seed=seed,
            window_label=scenario.window,
        )
    if scenario.campaign == "wave-double-join":
        return cloning.run_wave_double_join_campaign(
            scenario.window_seq,
            fault=scenario.fault,
            fault_seq=scenario.fault_seq,
            seed=seed,
            window_label=scenario.window,
        )
    if scenario.campaign == "stale-session-replay":
        return cloning.run_stale_session_replay_campaign(
            scenario.window_seq,
            fault=scenario.fault,
            fault_seq=scenario.fault_seq,
            seed=seed,
            window_label=scenario.window,
        )
    if scenario.campaign == "healed-disk":
        return cloning.run_healed_disk_campaign(
            scenario.window, fault=scenario.fault, seed=seed
        )
    raise ValueError(f"unknown campaign {scenario.campaign!r}")


def sweep_clone(seed: int = 2018, smoke: bool = False) -> list:
    """Every clone campaign at every window; ``smoke`` keeps the first
    scenario per (campaign, fault) cell — the ``make ci`` slice."""
    scenarios = enumerate_clone_scenarios(seed)
    if smoke:
        first: dict[tuple[str, str], CloneScenario] = {}
        for scenario in scenarios:
            first.setdefault((scenario.campaign, scenario.fault), scenario)
        scenarios = list(first.values())
    return [run_clone_scenario(scenario, seed) for scenario in scenarios]


def _main_clone(seed: int, smoke: bool) -> int:
    scenarios = enumerate_clone_scenarios(seed)
    slice_note = (
        " (smoke slice: first scenario per campaign x fault cell)" if smoke else ""
    )
    print(
        f"cloning-campaign sweep: {len(scenarios)} scenarios "
        f"(campaign x protocol window x fault, seed {seed}){slice_note}"
    )
    reports = sweep_clone(seed, smoke=smoke)
    failures = [r for r in reports if not r.ok]
    latencies = [
        r.detection_latency for r in reports if r.detected and r.detection_latency >= 0
    ]
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        fate = "fenced" if report.fenced else (
            "detected" if report.detected else "UNDETECTED"
        )
        latency = (
            f"latency={report.detection_latency:.6f}s"
            if report.detected and report.detection_latency >= 0
            else "latency=n/a"
        )
        print(
            f"  [{marker:>4}] {report.campaign:<20} "
            f"window={report.window:<16} fault={report.fault:<5} "
            f"clone={report.clone_outcome:<28} {fate:<10} {latency}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    detected = sum(1 for r in reports if r.detected)
    fenced = sum(1 for r in reports if r.fenced)
    if latencies:
        mean = sum(latencies) / len(latencies)
        print(
            f"detection latency (virtual): mean {mean:.6f}s, "
            f"max {max(latencies):.6f}s over {len(latencies)} detections"
        )
    print(
        f"{len(reports)} scenarios, {detected} clones detected, "
        f"{fenced} fenced, {len(failures)} invariant violations "
        f"(R3: never two live instances; R4: counters never regress)"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    session_resumption = "--session-resumption" in args
    batched = "--batched" in args
    disk = "--disk" in args
    fleet = "--fleet" in args
    clone = "--clone" in args
    smoke = "--smoke" in args
    args = [
        a
        for a in args
        if a
        not in (
            "--session-resumption",
            "--batched",
            "--disk",
            "--fleet",
            "--clone",
            "--smoke",
        )
    ]
    seed = int(args[0]) if args else 2018
    if disk:
        return _main_disk(seed, smoke)
    if fleet:
        return _main_fleet(seed, smoke)
    if clone:
        return _main_clone(seed, smoke)
    probe = probe_batched_message_sequence if batched else probe_message_sequence
    trace = probe(seed, session_resumption)
    mode = "on" if session_resumption else "off"
    shape = "wave (batched)" if batched else "migration"
    print(
        f"{shape} message sequence: {len(trace)} legs "
        f"(seed {seed}, session resumption {mode})"
    )
    run_sweep = sweep_batched if batched else sweep
    reports = run_sweep(seed, session_resumption=session_resumption)
    failures = [r for r in reports if not r.ok]
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        step = f"{report.msg_type or 'reply'}/{report.direction}"
        print(
            f"  [{marker:>4}] seq {report.seq:>2} {step:<22} "
            f"{report.kind:<13} migrate={report.migrate_outcome:<28} "
            f"recovery={report.recovery_outcome}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    print(
        f"{len(reports)} scenarios, {len(failures)} invariant violations "
        f"(R3: never two live instances; R4: counters never regress)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
