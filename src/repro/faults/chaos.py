"""Chaos harness: sweep faults over every message of a migration.

The paper's correctness argument (Section VI-C) is that the migration
protocol preserves two invariants *no matter where it is interrupted*:

* **R3** — at no point are there two operational instances of the migrated
  enclave (no forking via migration).
* **R4** — the enclave's monotonic counters never regress (no rollback via
  migration).

This module turns that argument into an executable experiment.  A fault-free
probe run records the complete message sequence of one enclave migration
(local attestation, ME-to-ME transfer, destination fetch, confirmation).
The sweep then replays the scenario once per (message, fault) pair — drop
the message, duplicate the request, or crash the source/destination machine
at that exact instant — lets the retry/resume machinery recover, and checks
R3 and R4 through ECALLs alone.

Run it as a module::

    PYTHONPATH=src python -m repro.faults.chaos
    PYTHONPATH=src python -m repro.faults.chaos --batched

``--batched`` sweeps the migration-wave path instead: two enclaves move as
one ``migrate_group`` wave (stage, one ``flush_staged``/``transfer_batch``
exchange, per-enclave completion), and every leg — including the batch
transfer itself and mid-batch machine crashes — takes every fault kind.
R3/R4 are then checked *per enclave*: each counter must be served by exactly
one instance at exactly its pre-migration value.

Exit status 1 means at least one swept scenario violated an invariant.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.apps.counter_app import MigratableBenchEnclave
from repro.cloud.datacenter import DataCenter
from repro.core.protocol import (
    MigratableApp,
    install_all_migration_enclaves,
    reinstall_migration_enclave,
)
from repro.core.result import MigrationOutcome
from repro.core.retry import RetryPolicy
from repro.errors import MigrationError, ReproError
from repro.faults.injector import FaultInjector, ObservedMessage
from repro.faults.plan import FaultPlan
from repro.sgx.identity import SigningKey

SOURCE = "machine-a"
DESTINATION = "machine-b"

#: The counter value the enclave reaches before migrating; R4 requires the
#: surviving instance to read back exactly this value.
COUNTER_TARGET = 3

#: Counter values for the two wave members in ``--batched`` sweeps; distinct
#: values so a cross-enclave state mix-up shows up as an R4 violation.
BATCH_COUNTER_TARGETS = (3, 5)

#: Small retry budget so scenarios where retries cannot help fail fast into
#: the resume path instead of burning sweep wall-clock.
SWEEP_POLICY = RetryPolicy(max_attempts=2, base_delay=0.05)

#: The fault kinds the sweep applies at every message position.  Duplicates
#: only make sense on request legs (the network layer re-delivers requests).
DEFAULT_KINDS = ("drop", "duplicate", "crash-source", "crash-dest")


@dataclass
class ChaosWorld:
    """One freshly built two-machine data center ready to migrate."""

    dc: DataCenter
    app: MigratableApp
    counter_id: int
    me_signer: SigningKey
    session_resumption: bool = False


@dataclass
class BatchChaosWorld:
    """Two machines, two migratable enclaves staged for one wave."""

    dc: DataCenter
    apps: list[MigratableApp]
    counter_ids: list
    me_signer: SigningKey
    session_resumption: bool = False


@dataclass
class ScenarioReport:
    """Outcome of one (message, fault) scenario."""

    kind: str
    seq: int
    msg_type: str | None
    direction: str
    migrate_outcome: str
    recovery_outcome: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_world(seed: int = 2018, session_resumption: bool = False) -> ChaosWorld:
    """Two machines, durable MEs on both, one counter enclave at
    ``COUNTER_TARGET`` on the source."""
    dc = DataCenter(name="chaos", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    install_all_migration_enclaves(
        dc, me_signer, durable=True, session_resumption=session_resumption
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    app = MigratableApp.deploy(
        dc, dc.machine(SOURCE), MigratableBenchEnclave, dev_key
    )
    app.retry_policy = SWEEP_POLICY
    enclave = app.start_new()
    counter_id, _ = enclave.ecall("create_counter")
    for _ in range(COUNTER_TARGET):
        enclave.ecall("increment_counter", counter_id)
    return ChaosWorld(
        dc=dc,
        app=app,
        counter_id=counter_id,
        me_signer=me_signer,
        session_resumption=session_resumption,
    )


def probe_message_sequence(
    seed: int = 2018, session_resumption: bool = False
) -> list[ObservedMessage]:
    """Record the full message trace of one fault-free migration."""
    world = build_world(seed, session_resumption)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    result = world.app.migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    world.dc.network.fault_injector = None
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"probe migration did not complete: {result.outcome}")
    return list(injector.trace)


def _plan_for(
    kind: str, leg: ObservedMessage, request_ordinal: int
) -> tuple[FaultPlan, list[str]]:
    """Build the one-fault plan for this scenario; returns the plan plus the
    machines it will crash (so recovery knows which MEs to reinstall).

    Drop/crash rules match every leg and fire on the ``seq``-th occurrence,
    which with a wildcard predicate is exactly the probe's global sequence
    number; duplicate rules match request legs only, so they count by the
    request's ordinal among requests.
    """
    plan = FaultPlan()
    if kind == "drop":
        return plan.drop(nth=leg.seq), []
    if kind == "duplicate":
        return plan.duplicate(direction="request", nth=request_ordinal), []
    if kind == "crash-source":
        return plan.crash_machine(SOURCE, nth=leg.seq), [SOURCE]
    if kind == "crash-dest":
        return plan.crash_machine(DESTINATION, nth=leg.seq), [DESTINATION]
    raise ValueError(f"unknown fault kind {kind!r}")


def check_invariants(world: ChaosWorld) -> list[str]:
    """R3/R4 via ECALLs only: an *operational instance* is a loaded, alive
    enclave of the application class that serves the counter read.  Frozen,
    uninitialized, or crashed instances refuse the read and do not count."""
    violations: list[str] = []
    serving: list[int] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            try:
                value = enclave.ecall("read_counter", world.counter_id)
            except ReproError:
                continue
            serving.append(value)
    if len(serving) > 1:
        violations.append(f"R3: {len(serving)} operational instances survive")
    if not serving:
        violations.append("liveness: no operational instance after recovery")
    else:
        value = serving[0]
        if value < COUNTER_TARGET:
            violations.append(
                f"R4: counter regressed to {value} (expected {COUNTER_TARGET})"
            )
        elif value > COUNTER_TARGET:
            violations.append(
                f"counter advanced to {value} without increments "
                f"(expected {COUNTER_TARGET})"
            )
    return violations


def run_scenario(
    kind: str,
    leg: ObservedMessage,
    request_ordinal: int,
    seed: int = 2018,
    session_resumption: bool = False,
) -> ScenarioReport:
    """Fresh world, one fault at ``leg``, recovery, invariant check."""
    world = build_world(seed, session_resumption)
    dc, app = world.dc, world.app
    plan, crashed = _plan_for(kind, leg, request_ordinal)
    dc.network.fault_injector = FaultInjector(
        plan=plan,
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    try:
        result = app.migrate(dc.machine(DESTINATION), migrate_vm=False)
        migrate_outcome = result.outcome.value
        completed = result.outcome is MigrationOutcome.COMPLETED
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False

    # Recovery: the fault window is over, the operator reinstalls the ME on
    # any crashed machine (its durable checkpoint survives on disk), and the
    # application resumes the journalled migration.
    dc.network.fault_injector = None
    recovery_outcome = "not-needed"
    if not completed:
        for name in crashed:
            reinstall_migration_enclave(
                dc,
                dc.machine(name),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        try:
            resumed = app.resume(migrate_vm=False)
            recovery_outcome = resumed.outcome.value
        except ReproError as exc:
            recovery_outcome = f"raised:{type(exc).__name__}"

    report = ScenarioReport(
        kind=kind,
        seq=leg.seq,
        msg_type=leg.msg_type,
        direction=leg.direction,
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
    )
    if recovery_outcome.startswith("raised:"):
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_invariants(world))
    return report


def sweep(
    seed: int = 2018,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    session_resumption: bool = False,
) -> list[ScenarioReport]:
    """Every message of the migration sequence under every fault kind."""
    trace = probe_message_sequence(seed, session_resumption)
    reports: list[ScenarioReport] = []
    request_ordinal = 0
    for leg in trace:
        for kind in kinds:
            if kind == "duplicate" and leg.direction != "request":
                continue
            reports.append(
                run_scenario(kind, leg, request_ordinal, seed, session_resumption)
            )
        if leg.direction == "request":
            request_ordinal += 1
    return reports


# ------------------------------------------------------------------ batched
def build_batched_world(
    seed: int = 2018, session_resumption: bool = False
) -> BatchChaosWorld:
    """Two machines, durable MEs, two counter enclaves on the source with
    distinct counter values (``BATCH_COUNTER_TARGETS``)."""
    dc = DataCenter(name="chaos", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    install_all_migration_enclaves(
        dc, me_signer, durable=True, session_resumption=session_resumption
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    apps: list[MigratableApp] = []
    counter_ids = []
    for index, target in enumerate(BATCH_COUNTER_TARGETS):
        app = MigratableApp.deploy(
            dc,
            dc.machine(SOURCE),
            MigratableBenchEnclave,
            dev_key,
            vm_name=f"chaos-vm-{index}",
            app_name=f"chaos-app-{index}",
        )
        app.retry_policy = SWEEP_POLICY
        enclave = app.start_new()
        # Counter ids are sequential *per enclave*, so both apps would get
        # id 0; padding app ``index`` with ``index`` extra counters makes its
        # tracked counter id unique, letting the invariant check attribute a
        # surviving instance to its app by the id set it serves.
        for _ in range(index):
            enclave.ecall("create_counter")
        counter_id, _ = enclave.ecall("create_counter")
        for _ in range(target):
            enclave.ecall("increment_counter", counter_id)
        apps.append(app)
        counter_ids.append(counter_id)
    return BatchChaosWorld(
        dc=dc,
        apps=apps,
        counter_ids=counter_ids,
        me_signer=me_signer,
        session_resumption=session_resumption,
    )


def probe_batched_message_sequence(
    seed: int = 2018, session_resumption: bool = False
) -> list[ObservedMessage]:
    """Record the full message trace of one fault-free migration wave."""
    world = build_batched_world(seed, session_resumption)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    results = MigratableApp.migrate_group(
        world.apps, world.dc.machine(DESTINATION), migrate_vm=False
    )
    world.dc.network.fault_injector = None
    for result in results:
        if result.outcome is not MigrationOutcome.COMPLETED:
            raise AssertionError(
                f"probe wave did not complete: {result.outcome}"
            )
    return list(injector.trace)


def check_batched_invariants(world: BatchChaosWorld) -> list[str]:
    """R3/R4 per wave member: each app's counter must be served by exactly
    one operational instance, at exactly its pre-migration value.

    An instance belongs to app ``i`` when it serves app ``i``'s tracked
    counter id but no *higher* tracked id (ids are padded to be strictly
    increasing across apps, so the highest readable id identifies the app).
    """
    violations: list[str] = []
    # Probe every alive enclave once for each tracked id.
    readings: list[dict[int, int]] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            served: dict[int, int] = {}
            for counter_id in world.counter_ids:
                try:
                    served[counter_id] = enclave.ecall("read_counter", counter_id)
                except ReproError:
                    continue
            if served:
                readings.append(served)
    for index, counter_id in enumerate(world.counter_ids):
        target = BATCH_COUNTER_TARGETS[index]
        higher = set(world.counter_ids[index + 1 :])
        serving = [
            served[counter_id]
            for served in readings
            if counter_id in served and not (higher & served.keys())
        ]
        label = f"enclave {index}"
        if len(serving) > 1:
            violations.append(
                f"R3: {len(serving)} operational instances serve {label}"
            )
        if not serving:
            violations.append(
                f"liveness: no operational instance serves {label}"
            )
        else:
            value = serving[0]
            if value < target:
                violations.append(
                    f"R4: {label} counter regressed to {value} (expected {target})"
                )
            elif value > target:
                violations.append(
                    f"{label} counter advanced to {value} without increments "
                    f"(expected {target})"
                )
    return violations


def run_batched_scenario(
    kind: str,
    leg: ObservedMessage,
    request_ordinal: int,
    seed: int = 2018,
    session_resumption: bool = False,
) -> ScenarioReport:
    """Fresh world, one fault somewhere in the wave, per-app recovery,
    per-app invariant check."""
    world = build_batched_world(seed, session_resumption)
    dc = world.dc
    plan, crashed = _plan_for(kind, leg, request_ordinal)
    dc.network.fault_injector = FaultInjector(
        plan=plan,
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    try:
        results = MigratableApp.migrate_group(
            world.apps, dc.machine(DESTINATION), migrate_vm=False
        )
        outcomes = [r.outcome for r in results]
        migrate_outcome = "+".join(o.value for o in outcomes)
        completed = all(o is MigrationOutcome.COMPLETED for o in outcomes)
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False

    # Recovery mirrors the sequential sweep, but drives each wave member's
    # journal individually — a crash mid-batch must leave every transaction
    # independently resumable.
    dc.network.fault_injector = None
    recovery_outcome = "not-needed"
    if not completed:
        for name in crashed:
            reinstall_migration_enclave(
                dc,
                dc.machine(name),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        per_app: list[str] = []
        for app in world.apps:
            try:
                resumed = app.resume(migrate_vm=False)
                per_app.append(resumed.outcome.value)
            except MigrationError as exc:
                # A member whose migration already finished (e.g. the fault
                # hit a sibling's leg) has a cleared journal; that is success,
                # not a recovery failure.  If the fault then killed its new
                # host, the enclave died *after* the protocol ended — an
                # ordinary enclave crash, recovered by a restart from sealed
                # state, not by migration resume.
                if "no migration in progress" in str(exc):
                    if app.enclave is not None and app.enclave.alive:
                        per_app.append("already-complete")
                    else:
                        try:
                            app.restart()
                            per_app.append("restarted")
                        except ReproError as restart_exc:
                            per_app.append(
                                f"raised:{type(restart_exc).__name__}"
                            )
                else:
                    per_app.append(f"raised:{type(exc).__name__}")
            except ReproError as exc:
                per_app.append(f"raised:{type(exc).__name__}")
        recovery_outcome = "+".join(per_app)

    report = ScenarioReport(
        kind=kind,
        seq=leg.seq,
        msg_type=leg.msg_type,
        direction=leg.direction,
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
    )
    if "raised:" in recovery_outcome:
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_batched_invariants(world))
    return report


def sweep_batched(
    seed: int = 2018,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    session_resumption: bool = False,
) -> list[ScenarioReport]:
    """Every message of the wave sequence under every fault kind."""
    trace = probe_batched_message_sequence(seed, session_resumption)
    reports: list[ScenarioReport] = []
    request_ordinal = 0
    for leg in trace:
        for kind in kinds:
            if kind == "duplicate" and leg.direction != "request":
                continue
            reports.append(
                run_batched_scenario(
                    kind, leg, request_ordinal, seed, session_resumption
                )
            )
        if leg.direction == "request":
            request_ordinal += 1
    return reports


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    session_resumption = "--session-resumption" in args
    batched = "--batched" in args
    args = [a for a in args if a not in ("--session-resumption", "--batched")]
    seed = int(args[0]) if args else 2018
    probe = probe_batched_message_sequence if batched else probe_message_sequence
    trace = probe(seed, session_resumption)
    mode = "on" if session_resumption else "off"
    shape = "wave (batched)" if batched else "migration"
    print(
        f"{shape} message sequence: {len(trace)} legs "
        f"(seed {seed}, session resumption {mode})"
    )
    run_sweep = sweep_batched if batched else sweep
    reports = run_sweep(seed, session_resumption=session_resumption)
    failures = [r for r in reports if not r.ok]
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        step = f"{report.msg_type or 'reply'}/{report.direction}"
        print(
            f"  [{marker:>4}] seq {report.seq:>2} {step:<22} "
            f"{report.kind:<13} migrate={report.migrate_outcome:<28} "
            f"recovery={report.recovery_outcome}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    print(
        f"{len(reports)} scenarios, {len(failures)} invariant violations "
        f"(R3: never two live instances; R4: counters never regress)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
