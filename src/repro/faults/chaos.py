"""Chaos harness: sweep faults over every message of a migration.

The paper's correctness argument (Section VI-C) is that the migration
protocol preserves two invariants *no matter where it is interrupted*:

* **R3** — at no point are there two operational instances of the migrated
  enclave (no forking via migration).
* **R4** — the enclave's monotonic counters never regress (no rollback via
  migration).

This module turns that argument into an executable experiment.  A fault-free
probe run records the complete message sequence of one enclave migration
(local attestation, ME-to-ME transfer, destination fetch, confirmation).
The sweep then replays the scenario once per (message, fault) pair — drop
the message, duplicate the request, or crash the source/destination machine
at that exact instant — lets the retry/resume machinery recover, and checks
R3 and R4 through ECALLs alone.

Run it as a module::

    PYTHONPATH=src python -m repro.faults.chaos

Exit status 1 means at least one swept scenario violated an invariant.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.apps.counter_app import MigratableBenchEnclave
from repro.cloud.datacenter import DataCenter
from repro.core.protocol import (
    MigratableApp,
    install_all_migration_enclaves,
    reinstall_migration_enclave,
)
from repro.core.result import MigrationOutcome
from repro.core.retry import RetryPolicy
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, ObservedMessage
from repro.faults.plan import FaultPlan
from repro.sgx.identity import SigningKey

SOURCE = "machine-a"
DESTINATION = "machine-b"

#: The counter value the enclave reaches before migrating; R4 requires the
#: surviving instance to read back exactly this value.
COUNTER_TARGET = 3

#: Small retry budget so scenarios where retries cannot help fail fast into
#: the resume path instead of burning sweep wall-clock.
SWEEP_POLICY = RetryPolicy(max_attempts=2, base_delay=0.05)

#: The fault kinds the sweep applies at every message position.  Duplicates
#: only make sense on request legs (the network layer re-delivers requests).
DEFAULT_KINDS = ("drop", "duplicate", "crash-source", "crash-dest")


@dataclass
class ChaosWorld:
    """One freshly built two-machine data center ready to migrate."""

    dc: DataCenter
    app: MigratableApp
    counter_id: int
    me_signer: SigningKey
    session_resumption: bool = False


@dataclass
class ScenarioReport:
    """Outcome of one (message, fault) scenario."""

    kind: str
    seq: int
    msg_type: str | None
    direction: str
    migrate_outcome: str
    recovery_outcome: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_world(seed: int = 2018, session_resumption: bool = False) -> ChaosWorld:
    """Two machines, durable MEs on both, one counter enclave at
    ``COUNTER_TARGET`` on the source."""
    dc = DataCenter(name="chaos", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    me_signer = SigningKey.generate(dc.rng.child("chaos-me-signer"))
    install_all_migration_enclaves(
        dc, me_signer, durable=True, session_resumption=session_resumption
    )
    dev_key = SigningKey.generate(dc.rng.child("chaos-dev"))
    app = MigratableApp.deploy(
        dc, dc.machine(SOURCE), MigratableBenchEnclave, dev_key
    )
    app.retry_policy = SWEEP_POLICY
    enclave = app.start_new()
    counter_id, _ = enclave.ecall("create_counter")
    for _ in range(COUNTER_TARGET):
        enclave.ecall("increment_counter", counter_id)
    return ChaosWorld(
        dc=dc,
        app=app,
        counter_id=counter_id,
        me_signer=me_signer,
        session_resumption=session_resumption,
    )


def probe_message_sequence(
    seed: int = 2018, session_resumption: bool = False
) -> list[ObservedMessage]:
    """Record the full message trace of one fault-free migration."""
    world = build_world(seed, session_resumption)
    injector = FaultInjector(
        plan=FaultPlan(),
        rng=world.dc.rng.child("chaos-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    result = world.app.migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    world.dc.network.fault_injector = None
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"probe migration did not complete: {result.outcome}")
    return list(injector.trace)


def _plan_for(
    kind: str, leg: ObservedMessage, request_ordinal: int
) -> tuple[FaultPlan, list[str]]:
    """Build the one-fault plan for this scenario; returns the plan plus the
    machines it will crash (so recovery knows which MEs to reinstall).

    Drop/crash rules match every leg and fire on the ``seq``-th occurrence,
    which with a wildcard predicate is exactly the probe's global sequence
    number; duplicate rules match request legs only, so they count by the
    request's ordinal among requests.
    """
    plan = FaultPlan()
    if kind == "drop":
        return plan.drop(nth=leg.seq), []
    if kind == "duplicate":
        return plan.duplicate(direction="request", nth=request_ordinal), []
    if kind == "crash-source":
        return plan.crash_machine(SOURCE, nth=leg.seq), [SOURCE]
    if kind == "crash-dest":
        return plan.crash_machine(DESTINATION, nth=leg.seq), [DESTINATION]
    raise ValueError(f"unknown fault kind {kind!r}")


def check_invariants(world: ChaosWorld) -> list[str]:
    """R3/R4 via ECALLs only: an *operational instance* is a loaded, alive
    enclave of the application class that serves the counter read.  Frozen,
    uninitialized, or crashed instances refuse the read and do not count."""
    violations: list[str] = []
    serving: list[int] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            try:
                value = enclave.ecall("read_counter", world.counter_id)
            except ReproError:
                continue
            serving.append(value)
    if len(serving) > 1:
        violations.append(f"R3: {len(serving)} operational instances survive")
    if not serving:
        violations.append("liveness: no operational instance after recovery")
    else:
        value = serving[0]
        if value < COUNTER_TARGET:
            violations.append(
                f"R4: counter regressed to {value} (expected {COUNTER_TARGET})"
            )
        elif value > COUNTER_TARGET:
            violations.append(
                f"counter advanced to {value} without increments "
                f"(expected {COUNTER_TARGET})"
            )
    return violations


def run_scenario(
    kind: str,
    leg: ObservedMessage,
    request_ordinal: int,
    seed: int = 2018,
    session_resumption: bool = False,
) -> ScenarioReport:
    """Fresh world, one fault at ``leg``, recovery, invariant check."""
    world = build_world(seed, session_resumption)
    dc, app = world.dc, world.app
    plan, crashed = _plan_for(kind, leg, request_ordinal)
    dc.network.fault_injector = FaultInjector(
        plan=plan,
        rng=dc.rng.child("chaos-faults"),
        machines=dict(dc.machines),
        meter=dc.meter,
    )
    try:
        result = app.migrate(dc.machine(DESTINATION), migrate_vm=False)
        migrate_outcome = result.outcome.value
        completed = result.outcome is MigrationOutcome.COMPLETED
    except ReproError as exc:
        migrate_outcome = f"raised:{type(exc).__name__}"
        completed = False

    # Recovery: the fault window is over, the operator reinstalls the ME on
    # any crashed machine (its durable checkpoint survives on disk), and the
    # application resumes the journalled migration.
    dc.network.fault_injector = None
    recovery_outcome = "not-needed"
    if not completed:
        for name in crashed:
            reinstall_migration_enclave(
                dc,
                dc.machine(name),
                world.me_signer,
                session_resumption=world.session_resumption,
            )
        try:
            resumed = app.resume(migrate_vm=False)
            recovery_outcome = resumed.outcome.value
        except ReproError as exc:
            recovery_outcome = f"raised:{type(exc).__name__}"

    report = ScenarioReport(
        kind=kind,
        seq=leg.seq,
        msg_type=leg.msg_type,
        direction=leg.direction,
        migrate_outcome=migrate_outcome,
        recovery_outcome=recovery_outcome,
    )
    if recovery_outcome.startswith("raised:"):
        report.violations.append(f"recovery failed: {recovery_outcome}")
    report.violations.extend(check_invariants(world))
    return report


def sweep(
    seed: int = 2018,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    session_resumption: bool = False,
) -> list[ScenarioReport]:
    """Every message of the migration sequence under every fault kind."""
    trace = probe_message_sequence(seed, session_resumption)
    reports: list[ScenarioReport] = []
    request_ordinal = 0
    for leg in trace:
        for kind in kinds:
            if kind == "duplicate" and leg.direction != "request":
                continue
            reports.append(
                run_scenario(kind, leg, request_ordinal, seed, session_resumption)
            )
        if leg.direction == "request":
            request_ordinal += 1
    return reports


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    session_resumption = "--session-resumption" in args
    args = [a for a in args if a != "--session-resumption"]
    seed = int(args[0]) if args else 2018
    trace = probe_message_sequence(seed, session_resumption)
    mode = "on" if session_resumption else "off"
    print(
        f"migration message sequence: {len(trace)} legs "
        f"(seed {seed}, session resumption {mode})"
    )
    reports = sweep(seed, session_resumption=session_resumption)
    failures = [r for r in reports if not r.ok]
    for report in reports:
        marker = "FAIL" if report.violations else "ok"
        step = f"{report.msg_type or 'reply'}/{report.direction}"
        print(
            f"  [{marker:>4}] seq {report.seq:>2} {step:<22} "
            f"{report.kind:<13} migrate={report.migrate_outcome:<28} "
            f"recovery={report.recovery_outcome}"
        )
        for violation in report.violations:
            print(f"         !! {violation}")
    print(
        f"{len(reports)} scenarios, {len(failures)} invariant violations "
        f"(R3: never two live instances; R4: counters never regress)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
