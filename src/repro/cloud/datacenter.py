"""The data center: machines, shared services, and the provider CA.

Owns the single simulation clock, the Intel-side services (EPID group, IAS),
the network fabric, the hypervisor, and the cloud provider's certificate
authority.  The CA implements the paper's **setup phase** (Section V-B): it
provisions each Migration Enclave with a credential binding the ME identity
to a machine of this provider, which is how MEs later authenticate each
other as belonging to the same cloud (Requirement R2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import wire
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.machine import PhysicalMachine
from repro.cloud.network import Network
from repro.crypto import schnorr
from repro.crypto.epid import EpidGroup
from repro.attestation.ias import IntelAttestationService
from repro.errors import InvalidParameterError
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostMeter, CostModel
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class ProviderCredential:
    """CA-signed binding of (provider, machine, ME identity, ME signing key).

    Issued during the setup phase; the embedded public key lets the ME sign
    attestation transcripts so its peer can confirm it belongs to the same
    cloud provider (Requirement R2).
    """

    provider: str
    machine_address: str
    mrenclave: bytes
    me_public_key: int
    signature: schnorr.SchnorrSignature

    def signed_payload(self) -> bytes:
        return (
            b"PROVIDER-CRED|"
            + self.provider.encode()
            + b"|"
            + self.machine_address.encode()
            + b"|"
            + self.mrenclave
            + b"|"
            + self.me_public_key.to_bytes(256, "big")
        )

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "provider": self.provider,
                "machine": self.machine_address,
                "mrenclave": self.mrenclave,
                "me_public_key": self.me_public_key.to_bytes(256, "big"),
                "sig": self.signature.to_bytes(),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProviderCredential":
        fields = wire.decode(data)
        return cls(
            provider=fields["provider"],
            machine_address=fields["machine"],
            mrenclave=fields["mrenclave"],
            me_public_key=int.from_bytes(fields["me_public_key"], "big"),
            signature=schnorr.SchnorrSignature.from_bytes(fields["sig"]),
        )

    def verify(self, ca_public_key: int) -> bool:
        return schnorr.verify(ca_public_key, self.signed_payload(), self.signature)


@dataclass
class DataCenter:
    """One cloud provider's data center (the whole simulated world)."""

    name: str = "dc-1"
    seed: int | str = 0
    cost_model: CostModel = field(default_factory=CostModel)
    clock: VirtualClock = field(init=False)
    meter: CostMeter = field(init=False)
    rng: DeterministicRng = field(init=False)
    network: Network = field(init=False)
    hypervisor: Hypervisor = field(init=False)
    epid_group: EpidGroup = field(init=False)
    ias: IntelAttestationService = field(init=False)
    machines: dict[str, PhysicalMachine] = field(default_factory=dict)
    _ca_keypair: schnorr.SchnorrKeyPair = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rng = DeterministicRng(self.seed, f"datacenter-{self.name}")
        self.clock = VirtualClock()
        self.meter = CostMeter(self.cost_model, self.clock, self.rng.child("meter-noise"))
        self.network = Network(self.meter)
        self.hypervisor = Hypervisor(self.meter)
        self.epid_group = EpidGroup(self.rng.child("intel-epid"))
        self.ias = IntelAttestationService(self.epid_group, self.rng.child("intel-ias"))
        self._ca_keypair = schnorr.generate_keypair(self.rng.child("provider-ca"))

    # ------------------------------------------------------------- machines
    def add_machine(self, name: str) -> PhysicalMachine:
        if name in self.machines:
            raise InvalidParameterError(f"machine {name!r} already exists")
        machine = PhysicalMachine(
            name=name,
            rng=self.rng.child(f"machine-{name}"),
            meter=self.meter,
            network=self.network,
            epid_member=self.epid_group.join(),
        )
        self.machines[name] = machine
        return machine

    def machine(self, name: str) -> PhysicalMachine:
        if name not in self.machines:
            raise InvalidParameterError(f"unknown machine {name!r}")
        return self.machines[name]

    # ---------------------------------------------------------- provider CA
    @property
    def ca_public_key(self) -> int:
        return self._ca_keypair.public

    def issue_credential(
        self, machine_address: str, mrenclave: bytes, me_public_key: int
    ) -> ProviderCredential:
        """Setup phase: certify a Migration Enclave on one of our machines."""
        if machine_address not in self.machines:
            raise InvalidParameterError(
                f"cannot certify ME on foreign machine {machine_address!r}"
            )
        credential = ProviderCredential(
            provider=self.name,
            machine_address=machine_address,
            mrenclave=mrenclave,
            me_public_key=me_public_key,
            signature=None,  # type: ignore[arg-type]
        )
        signature = schnorr.sign(self._ca_keypair.private, credential.signed_payload())
        return ProviderCredential(
            provider=credential.provider,
            machine_address=credential.machine_address,
            mrenclave=credential.mrenclave,
            me_public_key=credential.me_public_key,
            signature=signature,
        )

    # ------------------------------------------------------------- services
    def ias_verify_for(self, machine: PhysicalMachine):
        """An IAS verifier as seen from ``machine``: charges the WAN trip."""

        def verify(quote_bytes: bytes):
            self.meter.charge("ias_round_trip", self.cost_model.ias_verification)
            return self.ias.verify_quote(quote_bytes)

        return verify
