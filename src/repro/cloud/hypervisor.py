"""Live VM migration (pre-copy), the baseline the paper compares against.

Implements the classic pre-copy algorithm [Nelson et al., ATC'05 — the
paper's reference 10]: copy all memory while the VM runs, then iteratively
re-copy the pages dirtied during the previous round, and finally stop the VM
for a brief switchover.  With data-center bandwidth this takes "in the order
of seconds" — the yardstick against which the paper's 0.47 s enclave
overhead is judged small.

SGX enclaves do NOT survive this: the EPC cannot be read by the hypervisor,
so enclaves inside the VM are simply destroyed (Section II-B).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.cloud.machine import PhysicalMachine
from repro.cloud.vm import VirtualMachine
from repro.errors import InvalidParameterError
from repro.sim.costs import CostMeter


@dataclass
class MigrationReport:
    """What one live migration did and how long it took."""

    vm_name: str
    source: str
    destination: str
    rounds: int
    bytes_copied: int
    duration: float


@dataclass
class Hypervisor:
    """Data-center-level VM manager."""

    meter: CostMeter
    precopy_rounds: int = 3
    enclaves_destroyed: int = 0

    def migrate_vm(
        self, vm: VirtualMachine, destination: PhysicalMachine
    ) -> MigrationReport:
        """Live-migrate ``vm`` to ``destination``; returns a timing report.

        Any enclaves running inside the VM are destroyed — an SGX-aware
        mechanism (this paper's, or Gu et al.'s for data memory) must handle
        them separately.
        """
        source = vm.machine
        if source is destination:
            raise InvalidParameterError("source and destination machines are identical")
        model = self.meter.model
        start = self.meter.clock.now

        # Pre-copy rounds: each round re-copies the fraction of memory
        # dirtied while the previous round was in flight.  The copied bytes
        # ride the source -> destination link, so under trace capture they
        # are attributed there (concurrent migrations to different hosts
        # then genuinely overlap); without a recorder the context is inert.
        bytes_copied = 0
        round_bytes = vm.memory_bytes
        rounds = 0
        link = (
            self.meter.on_link(source.name, destination.name)
            if getattr(self.meter, "recorder", None) is not None
            else nullcontext()
        )
        with link:
            for _ in range(self.precopy_rounds):
                self.meter.charge_exact("vm_precopy", model.transfer_time(round_bytes))
                bytes_copied += round_bytes
                rounds += 1
                round_bytes = int(round_bytes * model.vm_dirty_round_fraction)
                if round_bytes < 4096:
                    break
            # Stop-and-copy switchover: final dirty set + device state.
            self.meter.charge_exact("vm_switchover", model.transfer_time(round_bytes))
            bytes_copied += round_bytes
        self.meter.charge("vm_fixed", model.vm_migration_fixed)

        # Enclaves cannot cross: their EPC pages are opaque to us.
        for app in vm.applications:
            for enclave in app.enclaves:
                if enclave.alive:
                    self.enclaves_destroyed += 1
                    source.on_enclave_destroyed(enclave)
                    enclave.destroy()

        source.release_vm(vm)
        destination.adopt_vm(vm)
        return MigrationReport(
            vm_name=vm.name,
            source=source.name,
            destination=destination.name,
            rounds=rounds,
            bytes_copied=bytes_copied,
            duration=self.meter.clock.now - start,
        )
