"""Key Distribution Center and shared storage (Section III-C's alternative).

The paper observes that instead of SGX sealing, a cloud enclave could fetch
an encryption key from a KDC (e.g. AWS KMS) and keep its encrypted state in
shared storage (e.g. S3).  The state then *survives* migration — but if the
migration mechanism does not also migrate monotonic counters, the roll-back
attack of Section III-C goes through.  This module provides exactly that
substrate so the attack can be demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attestation.ias import IntelAttestationService
from repro.cloud.storage import UntrustedStorage
from repro.crypto.kdf import derive_key_cmac
from repro.errors import AttestationError
from repro.sgx.quote import Quote
from repro.sim.costs import CostMeter
from repro.sim.rng import DeterministicRng


@dataclass
class KeyDistributionCenter:
    """KMS-style service: hands a stable per-identity key to attested enclaves.

    The enclave proves its identity with a quote; the KDC returns a key that
    is a pure function of (KDC master key, MRENCLAVE, key label) — so the
    same enclave gets the same key on *any* machine.  That is the property
    that makes the state portable and the counters the only freshness root.
    """

    ias: IntelAttestationService
    rng: DeterministicRng
    meter: CostMeter | None = None
    _master_key: bytes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._master_key = self.rng.child("kdc-master").random_bytes(16)

    def request_key(self, quote_bytes: bytes, label: bytes = b"state") -> bytes:
        """Verify the quote and derive the caller's stable key."""
        if self.meter is not None:
            # Network round trip to the KDC + IAS verification on its side.
            self.meter.charge("kdc_round_trip", self.meter.model.net_dc_rtt)
            self.meter.charge("ias_round_trip", self.meter.model.ias_verification)
        verdict = self.ias.verify_quote(quote_bytes)
        if not verdict.ok:
            raise AttestationError("KDC: quote rejected")
        quote = Quote.from_bytes(quote_bytes)
        return derive_key_cmac(
            self._master_key, b"KDC-KEY", quote.identity.mrenclave + b"|" + label
        )


def shared_storage() -> UntrustedStorage:
    """An S3-like store reachable from every machine (still untrusted —
    the adversary can replay old object versions)."""
    return UntrustedStorage(machine_id="shared-storage")
