"""The simulated data-center network.

A synchronous request/response fabric: components register named endpoints
(e.g. ``machine-b/me`` for a Migration Enclave's service port) and peers
send them byte payloads.  The network itself is **untrusted** — adversary
taps can observe, modify, or drop any message — so every security property
must come from the attested channels layered on top.

Endpoints are named ``machine/service``.  The :class:`Endpoint` helper and
the service-name constants below replace hand-pasted f-strings at call
sites; everything that accepts an address accepts either form.

Timing: each exchange charges one RTT (local or cross-host) plus the
bandwidth-proportional transfer time of both payloads.  A caller-supplied
``timeout`` bounds the *charged* round-trip time: if the exchange took
longer in simulated time than the deadline allows, the sender sees
:class:`NetworkTimeoutError` — note the request may still have been
delivered and processed (at-least-once semantics), so retried operations
must be idempotent.

Fault injection: beyond ad-hoc taps, a :class:`repro.faults.FaultInjector`
can be attached via ``fault_injector``; it observes every request and
response with full addressing metadata and can drop, delay, duplicate, or
corrupt messages, or crash machines, per a deterministic plan.

Concurrency: when a :class:`~repro.sim.scheduler.TraceRecorder` is attached
to the meter, each exchange is additionally *attributed* — transfer time to
the directed ``src -> dst`` link and handler execution to the destination
machine's CPU — so a later discrete-event replay can let concurrent
exchanges share the pipe and contend for CPUs instead of summing serially.
Without a recorder the attribution contexts are no-ops and this path is
byte-identical to the original synchronous fabric.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError, NetworkTimeoutError, ReproError
from repro.sim.costs import CostMeter

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

Handler = Callable[[bytes, str], bytes]
# tap(src, dst, payload) -> payload | None (None = drop)
Tap = Callable[[str, str, bytes], bytes | None]

# Well-known service names (the part after the "/" in an endpoint).
ME_SERVICE = "me"  # per-machine Migration Enclave service port
ROTE_SERVICE = "rote"  # ROTE-style distributed counter service
GU_SERVICE = "gu"  # Gu et al. live-migration baseline service


@dataclass(frozen=True)
class Endpoint:
    """A ``machine/service`` network address, structured.

    ``str(Endpoint("machine-b", ME_SERVICE))`` == ``"machine-b/me"``; use
    :meth:`parse` for the reverse.  Frozen so endpoints are hashable and
    usable as dict keys next to plain strings.
    """

    machine: str
    service: str

    def __str__(self) -> str:
        return f"{self.machine}/{self.service}"

    @classmethod
    def parse(cls, address: str | "Endpoint") -> "Endpoint":
        if isinstance(address, Endpoint):
            return address
        machine, _, service = address.partition("/")
        return cls(machine, service)

    @classmethod
    def me(cls, machine: str) -> "Endpoint":
        """The Migration Enclave service port of ``machine``."""
        return cls(machine, ME_SERVICE)


def _machine_of(address: str) -> str:
    return address.split("/", 1)[0]


@dataclass
class Network:
    """Endpoint registry + message fabric for one data center."""

    meter: CostMeter
    _endpoints: dict[str, Handler] = field(default_factory=dict)
    _taps: list[Tap] = field(default_factory=list)
    fault_injector: "FaultInjector | None" = None
    messages_sent: int = 0
    bytes_sent: int = 0

    def register(
        self, address: str | Endpoint, handler: Handler, *, replace: bool = False
    ) -> None:
        """Bind ``address`` (``machine/service``) to a request handler.

        ``replace=True`` rebinds an existing endpoint (e.g. a restarted
        service re-claiming its port).
        """
        address = str(address)
        if address in self._endpoints and not replace:
            raise NetworkError(f"endpoint {address!r} already registered")
        self._endpoints[address] = handler

    def unregister(self, address: str | Endpoint) -> None:
        self._endpoints.pop(str(address), None)

    def unregister_machine(self, machine: str) -> None:
        """Drop every endpoint hosted on ``machine`` (the machine crashed)."""
        for address in [a for a in self._endpoints if _machine_of(a) == machine]:
            del self._endpoints[address]

    def add_tap(self, tap: Tap) -> None:
        """Install an adversary tap over all traffic."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def _charge(self, src: str, dst: str, num_bytes: int) -> None:
        model = self.meter.model
        rtt = model.net_local_rtt if _machine_of(src) == _machine_of(dst) else model.net_dc_rtt
        self.meter.charge("net_rtt", rtt)
        self.meter.charge_exact("net_transfer", model.transfer_time(num_bytes))

    def _apply_faults(self, src: str, dst: str, payload: bytes, direction: str) -> bytes:
        """Run the fault injector (if any) over one message leg."""
        if self.fault_injector is None:
            return payload
        faulted = self.fault_injector.on_message(src, dst, payload, direction)
        if faulted is None:
            raise NetworkError(f"message {src} -> {dst} dropped by fault injector")
        return faulted

    def send(
        self, src: str, dst: str | Endpoint, payload: bytes, *, timeout: float | None = None
    ) -> bytes:
        """Request/response exchange; returns the handler's response.

        Raises :class:`NetworkError` for unknown endpoints or messages
        dropped by a tap — the sender sees a connection failure, exactly as
        a real untrusted network can induce.  With ``timeout``, raises
        :class:`NetworkTimeoutError` when the simulated round trip exceeds
        the deadline; the request may still have been processed.
        """
        dst = str(dst)
        started = self.meter.clock.now
        payload = self._apply_faults(src, dst, payload, "request")
        handler = self._endpoints.get(dst)
        if handler is None:
            raise NetworkError(f"no endpoint {dst!r}")
        for tap in self._taps:
            tapped = tap(src, dst, payload)
            if tapped is None:
                raise NetworkError(f"message {src} -> {dst} dropped by adversary")
            payload = tapped
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        # Attribution contexts are live only while a trace recorder is
        # attached (the discrete-event concurrency path); the sequential
        # path takes the nullcontext branches and stays byte-identical.
        recording = self.meter.recorder is not None
        src_machine, dst_machine = _machine_of(src), _machine_of(dst)
        with (
            self.meter.on_link(src_machine, dst_machine)
            if recording
            else nullcontext()
        ):
            self._charge(src, dst, len(payload))
        with (
            self.meter.located(dst_machine) if recording else nullcontext()
        ):
            response = handler(payload, src)
            if self.fault_injector is not None and self.fault_injector.wants_duplicate(
                src, dst, "request"
            ):
                # At-least-once delivery: the handler runs again on the same
                # payload; the sender only ever sees the first response.  A
                # failure of the duplicate stays on the receiver's side.
                # The duplicate leg is real chaos traffic, so it counts in
                # the message/byte odometers like any other delivery.
                self.messages_sent += 1
                self.bytes_sent += len(payload)
                try:
                    handler(payload, src)
                except ReproError:
                    # A rejected duplicate (replayed txn, desynced channel) is
                    # the idempotency machinery working; anything outside the
                    # typed taxonomy is a bug and must surface, not vanish.
                    pass
        response = self._apply_faults(dst, src, response, "response")
        for tap in self._taps:
            tapped = tap(dst, src, response)
            if tapped is None:
                raise NetworkError(f"response {dst} -> {src} dropped by adversary")
            response = tapped
        self.bytes_sent += len(response)
        with (
            self.meter.on_link(dst_machine, src_machine)
            if recording
            else nullcontext()
        ):
            self.meter.charge_exact(
                "net_transfer", self.meter.model.transfer_time(len(response))
            )
        if timeout is not None and self.meter.clock.now - started > timeout:
            raise NetworkTimeoutError(
                f"{src} -> {dst} round trip exceeded timeout of {timeout}s"
            )
        return response

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)
