"""The simulated data-center network.

A synchronous request/response fabric: components register named endpoints
(e.g. ``machine-b/me`` for a Migration Enclave's service port) and peers
send them byte payloads.  The network itself is **untrusted** — adversary
taps can observe, modify, or drop any message — so every security property
must come from the attested channels layered on top.

Timing: each exchange charges one RTT (local or cross-host) plus the
bandwidth-proportional transfer time of both payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.sim.costs import CostMeter

Handler = Callable[[bytes, str], bytes]
# tap(src, dst, payload) -> payload | None (None = drop)
Tap = Callable[[str, str, bytes], bytes | None]


def _machine_of(address: str) -> str:
    return address.split("/", 1)[0]


@dataclass
class Network:
    """Endpoint registry + message fabric for one data center."""

    meter: CostMeter
    _endpoints: dict[str, Handler] = field(default_factory=dict)
    _taps: list[Tap] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0

    def register(self, address: str, handler: Handler, replace: bool = False) -> None:
        """Bind ``address`` (``machine/service``) to a request handler.

        ``replace=True`` rebinds an existing endpoint (e.g. a restarted
        service re-claiming its port).
        """
        if address in self._endpoints and not replace:
            raise NetworkError(f"endpoint {address!r} already registered")
        self._endpoints[address] = handler

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def add_tap(self, tap: Tap) -> None:
        """Install an adversary tap over all traffic."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def _charge(self, src: str, dst: str, num_bytes: int) -> None:
        model = self.meter.model
        rtt = model.net_local_rtt if _machine_of(src) == _machine_of(dst) else model.net_dc_rtt
        self.meter.charge("net_rtt", rtt)
        self.meter.charge_exact("net_transfer", model.transfer_time(num_bytes))

    def send(self, src: str, dst: str, payload: bytes) -> bytes:
        """Request/response exchange; returns the handler's response.

        Raises :class:`NetworkError` for unknown endpoints or messages
        dropped by a tap — the sender sees a connection failure, exactly as
        a real untrusted network can induce.
        """
        handler = self._endpoints.get(dst)
        if handler is None:
            raise NetworkError(f"no endpoint {dst!r}")
        for tap in self._taps:
            tapped = tap(src, dst, payload)
            if tapped is None:
                raise NetworkError(f"message {src} -> {dst} dropped by adversary")
            payload = tapped
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        self._charge(src, dst, len(payload))
        response = handler(payload, src)
        for tap in self._taps:
            tapped = tap(dst, src, response)
            if tapped is None:
                raise NetworkError(f"response {dst} -> {src} dropped by adversary")
            response = tapped
        self.bytes_sent += len(response)
        self.meter.charge_exact("net_transfer", self.meter.model.transfer_time(len(response)))
        return response

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)
