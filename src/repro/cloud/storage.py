"""Untrusted persistent storage.

The OS-controlled disk where sealed blobs live.  Per the SGX threat model the
adversary fully controls it, so the API *designs in* the adversarial moves
the paper's attacks need: every write is kept in a version history, and the
adversary can snapshot any version and put it back later (replay), delete
blobs, or corrupt them.  Sealing's AEAD detects corruption; only monotonic
counters detect replay — which is the whole point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


class StorageError(ReproError):
    """Requested blob does not exist."""


@dataclass
class UntrustedStorage:
    """A per-machine blob store with full adversarial control."""

    machine_id: str
    _blobs: dict[str, bytes] = field(default_factory=dict)
    _history: dict[str, list[bytes]] = field(default_factory=dict)

    # ------------------------------------------------------------ honest API
    def write(self, path: str, data: bytes) -> None:
        self._blobs[path] = bytes(data)
        self._history.setdefault(path, []).append(bytes(data))

    def read(self, path: str) -> bytes:
        if path not in self._blobs:
            raise StorageError(f"no blob at {path!r} on {self.machine_id}")
        return self._blobs[path]

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def delete(self, path: str) -> None:
        self._blobs.pop(path, None)

    def paths(self) -> list[str]:
        return sorted(self._blobs)

    # --------------------------------------------------------- adversary API
    def versions(self, path: str) -> list[bytes]:
        """All values ever written to ``path`` (the adversary kept copies)."""
        return list(self._history.get(path, []))

    def replay(self, path: str, version_index: int) -> None:
        """Put an old version back — the classic roll-back move."""
        history = self._history.get(path)
        if not history:
            raise StorageError(f"nothing ever written to {path!r}")
        self._blobs[path] = history[version_index]

    def corrupt(self, path: str, flip_byte: int = 0) -> None:
        """Flip one byte of the stored blob (integrity-attack helper)."""
        data = bytearray(self.read(path))
        data[flip_byte % len(data)] ^= 0xFF
        self._blobs[path] = bytes(data)
