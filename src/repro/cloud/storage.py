"""Untrusted persistent storage.

The OS-controlled disk where sealed blobs live.  Per the SGX threat model the
adversary fully controls it, so the API *designs in* the adversarial moves
the paper's attacks need: every write is kept in a version history, and the
adversary can snapshot any version and put it back later (replay), delete
blobs, or corrupt them.  Sealing's AEAD detects corruption; only monotonic
counters detect replay — which is the whole point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import wire
from repro.errors import ReproError


class StorageError(ReproError):
    """Requested blob does not exist."""


@dataclass
class UntrustedStorage:
    """A per-machine blob store with full adversarial control."""

    machine_id: str
    _blobs: dict[str, bytes] = field(default_factory=dict)
    _history: dict[str, list[bytes]] = field(default_factory=dict)

    # ------------------------------------------------------------ honest API
    def write(self, path: str, data: bytes) -> None:
        self._blobs[path] = bytes(data)
        self._history.setdefault(path, []).append(bytes(data))

    def read(self, path: str) -> bytes:
        if path not in self._blobs:
            raise StorageError(f"no blob at {path!r} on {self.machine_id}")
        return self._blobs[path]

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def delete(self, path: str) -> None:
        self._blobs.pop(path, None)

    def paths(self) -> list[str]:
        return sorted(self._blobs)

    # --------------------------------------------------------- adversary API
    def versions(self, path: str) -> list[bytes]:
        """All values ever written to ``path`` (the adversary kept copies)."""
        return list(self._history.get(path, []))

    def replay(self, path: str, version_index: int) -> None:
        """Put an old version back — the classic roll-back move."""
        history = self._history.get(path)
        if not history:
            raise StorageError(f"nothing ever written to {path!r}")
        self._blobs[path] = history[version_index]

    def corrupt(self, path: str, flip_byte: int = 0) -> None:
        """Flip one byte of the stored blob (integrity-attack helper)."""
        data = bytearray(self.read(path))
        data[flip_byte % len(data)] ^= 0xFF
        self._blobs[path] = bytes(data)


# --------------------------------------------------------- migration journal
MIGRATION_JOURNAL_PATH = "migration_txn"

#: Journal phases, in protocol order.
PHASE_PREPARE = "prepare"  # source decided to migrate; nothing shipped yet
PHASE_SHIPPED = "shipped"  # library frozen, data handed to the source ME
PHASE_ARRIVED = "arrived"  # VM relocated; destination side is restoring


@dataclass(frozen=True)
class MigrationRecord:
    """The persisted migration-in-progress record (Section VI-C semantics).

    Written by the *untrusted* application before each irreversible protocol
    step so a crashed source or destination knows, on restart, which
    transaction to resume and in which direction.  It is a recovery hint
    only: deleting or forging it can at worst stall recovery (availability).
    R3/R4 never depend on it — forks and rollbacks are prevented by the
    trusted layers (freeze flag, counter destruction, ME matching).
    """

    txn_id: str
    role: str  # "source" | "destination"
    phase: str  # PHASE_PREPARE | PHASE_SHIPPED | PHASE_ARRIVED
    source: str  # source machine address
    destination: str  # destination machine address
    retries: int = 0

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "txn": self.txn_id,
                "role": self.role,
                "phase": self.phase,
                "source": self.source,
                "destination": self.destination,
                "retries": self.retries,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MigrationRecord":
        fields = wire.decode(data)
        return cls(
            txn_id=fields["txn"],
            role=fields["role"],
            phase=fields["phase"],
            source=fields["source"],
            destination=fields["destination"],
            retries=fields["retries"],
        )


@dataclass
class MigrationJournal:
    """One application's migration-in-progress record on one machine's disk.

    ``owner`` is the application name; the record lives under the same
    per-application prefix as the app's other blobs.
    """

    storage: UntrustedStorage
    owner: str

    @property
    def path(self) -> str:
        return f"{self.owner}/{MIGRATION_JOURNAL_PATH}"

    def write(self, record: MigrationRecord) -> None:
        self.storage.write(self.path, record.to_bytes())

    def read(self) -> MigrationRecord | None:
        if not self.storage.exists(self.path):
            return None
        try:
            return MigrationRecord.from_bytes(self.storage.read(self.path))
        except (wire.WireError, KeyError):
            return None  # corrupted journal == no journal (recovery hint only)

    def clear(self) -> None:
        self.storage.delete(self.path)
