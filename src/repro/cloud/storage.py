"""Untrusted persistent storage with realistic durability semantics.

The OS-controlled disk where sealed blobs live.  Per the SGX threat model the
adversary fully controls it, so the API *designs in* the adversarial moves
the paper's attacks need: every write is kept in a version history, and the
adversary can snapshot any version and put it back later (replay), delete
blobs, or corrupt them.  Sealing's AEAD detects corruption; only monotonic
counters detect replay — which is the whole point of the paper.

On top of the adversary model sits a *crash-consistency* model.  A write
lands in a volatile write-back buffer and is only promoted to the durable
image by an explicit :meth:`UntrustedStorage.sync` (fsync).  A machine
:meth:`crash` discards everything unsynced, reverting the visible view to
the durable image — and, when a fault plan says so, the in-flight write can
be **torn** at a deterministic byte offset, a sync can **lie**
(``lost_write``: acked, dropped at crash), media can **rot** one byte, or a
read can return a **stale** earlier version.  All four are driven by the
seeded :class:`~repro.faults.injector.FaultInjector` attached via
``fault_injector``, so a plan plus a seed reproduces the identical failure.

:meth:`rename` is the atomic-replace primitive (metadata-journaled, ext4
``data=ordered`` semantics): if the source blob's data never became durable,
the rename *target keeps its previous durable content* at crash — which is
exactly why write-temp-then-sync-then-rename is self-healing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from typing import Protocol

from repro import wire
from repro.errors import StorageError


class DiskFaultHook(Protocol):
    """The disk-facing slice of :class:`~repro.faults.injector.FaultInjector`.

    Each hook observes one disk operation and returns the fault verdict for
    it (or ``None``/``False`` for "no fault").  Structural typing keeps the
    cloud layer free of an import cycle on the faults package.
    """

    def on_disk_write(self, machine: str, path: str, size: int) -> int | None:
        """Tear offset for this write, or ``None`` for a clean write."""

    def on_disk_sync(self, machine: str, path: str) -> bool:
        """``True`` when this sync lies (ack without promoting to durable)."""

    def on_disk_read(self, machine: str, path: str, size: int) -> tuple | None:
        """``("bit_rot", position, flip)`` or ``("stale_read",)`` or ``None``."""


@dataclass
class UntrustedStorage:
    """A per-machine blob store with full adversarial control.

    ``_blobs`` is the *buffered* view every honest reader sees (page cache);
    ``_durable`` is what actually survives a power failure.  ``write`` only
    touches the buffer; ``sync`` promotes; ``crash`` reverts the buffer to
    the durable image, applying any pending torn-write marks.
    """

    machine_id: str
    _blobs: dict[str, bytes] = field(default_factory=dict)
    _durable: dict[str, bytes] = field(default_factory=dict)
    _history: dict[str, "list[bytes | None]"] = field(default_factory=dict)
    _unsynced: set[str] = field(default_factory=set)
    _torn: dict[str, int] = field(default_factory=dict)  # path -> tear offset
    _lost: set[str] = field(default_factory=set)  # sync acked, never landed
    #: Times a journal read found an unparseable record (see
    #: :meth:`MigrationJournal.read`); surfaced in MigrationResult diagnostics.
    journal_corruption_count: int = 0
    #: Disk-fault hook; the chaos harness points this at the FaultInjector.
    fault_injector: DiskFaultHook | None = field(default=None, repr=False)

    # ------------------------------------------------------------ honest API
    def write(self, path: str, data: bytes) -> None:
        """Buffer a write.  Visible to :meth:`read` immediately, durable only
        after :meth:`sync` — a crash before then discards (or tears) it."""
        data = bytes(data)
        self._blobs[path] = data
        self._history.setdefault(path, []).append(data)
        self._unsynced.add(path)
        # A fresh write supersedes any fate marked for the previous one.
        self._torn.pop(path, None)
        self._lost.discard(path)
        if self.fault_injector is not None:
            offset = self.fault_injector.on_disk_write(self.machine_id, path, len(data))
            if offset is not None:
                self._torn[path] = offset

    def sync(self, path: str | None = None) -> None:
        """fsync: promote buffered writes (and deletes) to the durable image.
        With no argument, flushes everything pending."""
        targets = [path] if path is not None else sorted(self._unsynced)
        for target in targets:
            if target not in self._unsynced:
                continue
            self._unsynced.discard(target)
            if target in self._torn:
                # The drive acked long ago but the platter holds a torn
                # copy; the lie only surfaces at the next power failure.
                continue
            if self.fault_injector is not None and self.fault_injector.on_disk_sync(
                self.machine_id, target
            ):
                self._lost.add(target)
                continue
            if target in self._blobs:
                self._durable[target] = self._blobs[target]
            else:
                self._durable.pop(target, None)

    def read(self, path: str) -> bytes:
        if path not in self._blobs:
            raise StorageError(f"no blob at {path!r} on {self.machine_id}")
        data = self._blobs[path]
        if self.fault_injector is not None:
            verdict = self.fault_injector.on_disk_read(self.machine_id, path, len(data))
            if verdict is not None and verdict[0] == "bit_rot" and data:
                _, position, flip = verdict
                rotted = bytearray(data)
                rotted[position % len(rotted)] ^= flip
                data = bytes(rotted)
                # Media rot is persistent: the buffered view (and, when the
                # blob had landed, the platter copy) now carry the flip.  The
                # history keeps the pristine bytes — the adversary archived
                # the write before the medium decayed.
                self._blobs[path] = data
                if path not in self._unsynced and path not in self._lost:
                    if path in self._durable:
                        self._durable[path] = data
            elif verdict is not None and verdict[0] == "stale_read":
                for old in reversed(self._history.get(path, [])):
                    if old is not None and old != data:
                        return old
        return data

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def delete(self, path: str) -> None:
        """Unlink.  Tombstoned in the history (so :meth:`replay` can undo a
        mid-migration deletion) and — like a write — durable only after
        :meth:`sync`: a crash resurrects an unsynced delete."""
        if path not in self._blobs:
            return
        self._blobs.pop(path)
        self._history.setdefault(path, []).append(None)
        self._unsynced.add(path)
        self._torn.pop(path, None)
        self._lost.discard(path)

    def rename(self, old: str, new: str) -> None:
        """Atomically replace ``new`` with ``old`` (metadata-journaled).

        With ext4 ``data=ordered`` semantics: when the source blob's data is
        already durable the rename is immediately durable; when it is not
        (unsynced, or a lying sync dropped it), a crash leaves ``new`` with
        its *previous* durable content — never a mix of names and inodes.  A
        torn source write transfers its tear to the new name.
        """
        if old not in self._blobs:
            raise StorageError(f"no blob at {old!r} on {self.machine_id}")
        data = self._blobs.pop(old)
        self._blobs[new] = data
        self._history.setdefault(new, []).append(data)
        self._history.setdefault(old, []).append(None)
        promoted = (
            old in self._durable
            and old not in self._unsynced
            and old not in self._torn
            and old not in self._lost
        )
        self._durable.pop(old, None)
        if promoted:
            self._durable[new] = data
            self._unsynced.discard(new)
            self._torn.pop(new, None)
            self._lost.discard(new)
        else:
            if old in self._torn:
                self._torn[new] = self._torn.pop(old)
            else:
                self._torn.pop(new, None)
            if old in self._lost:
                self._lost.add(new)
            else:
                self._lost.discard(new)
            if old in self._unsynced:
                self._unsynced.add(new)
        self._unsynced.discard(old)
        self._torn.pop(old, None)
        self._lost.discard(old)

    def paths(self) -> list[str]:
        return sorted(self._blobs)

    # ----------------------------------------------------------- power event
    def crash(self) -> None:
        """Power failure: unsynced writes vanish, lying syncs surface, and
        any torn-marked in-flight write lands as prefix-of-new +
        suffix-of-old at its deterministic offset."""
        for path, offset in self._torn.items():
            new = self._blobs.get(path, b"")
            old = self._durable.get(path, b"")
            self._durable[path] = new[:offset] + old[offset:]
        self._blobs = dict(self._durable)
        self._unsynced.clear()
        self._torn.clear()
        self._lost.clear()

    # --------------------------------------------------------- adversary API
    def versions(self, path: str) -> "list[bytes | None]":
        """All values ever written to ``path`` (the adversary kept copies).
        ``None`` entries are deletion tombstones."""
        return list(self._history.get(path, []))

    def replay(self, path: str, version_index: int) -> None:
        """Put an old version back — the classic roll-back move.  Replaying
        a tombstone re-deletes the blob.  The adversary writes the platter
        directly, so the replayed version is immediately durable."""
        history = self._history.get(path)
        if not history:
            raise StorageError(f"nothing ever written to {path!r}")
        value = history[version_index]
        if value is None:
            self._blobs.pop(path, None)
            self._durable.pop(path, None)
        else:
            self._blobs[path] = value
            self._durable[path] = value
        self._unsynced.discard(path)
        self._torn.pop(path, None)
        self._lost.discard(path)

    def heal(self, pattern: str) -> list[str]:
        """Restore every blob matching ``pattern`` to its newest archived
        version — the recovery counterpart of :meth:`replay`, used by the
        disk chaos sweep after AEAD/parse checks reject the on-disk copy."""
        healed: list[str] = []
        for path, history in self._history.items():
            if not fnmatch(path, pattern):
                continue
            newest = next((v for v in reversed(history) if v is not None), None)
            if newest is None or self._blobs.get(path) == newest:
                continue
            self.replay(path, max(i for i, v in enumerate(history) if v is newest))
            healed.append(path)
        return sorted(healed)

    def corrupt(self, path: str, flip_byte: int = 0) -> None:
        """Flip one byte of the stored blob (integrity-attack helper).  The
        adversary writes the platter directly, so the flip is durable."""
        if path not in self._blobs:
            raise StorageError(f"no blob at {path!r} on {self.machine_id}")
        data = bytearray(self._blobs[path])
        if not data:
            raise StorageError(f"cannot corrupt empty blob at {path!r}")
        data[flip_byte % len(data)] ^= 0xFF
        self._blobs[path] = bytes(data)
        if path in self._durable:
            self._durable[path] = bytes(data)


# --------------------------------------------------------- migration journal
MIGRATION_JOURNAL_PATH = "migration_txn"

#: Journal phases, in protocol order.
PHASE_PREPARE = "prepare"  # source decided to migrate; nothing shipped yet
PHASE_SHIPPED = "shipped"  # library frozen, data handed to the source ME
PHASE_ARRIVED = "arrived"  # VM relocated; destination side is restoring


@dataclass(frozen=True)
class MigrationRecord:
    """The persisted migration-in-progress record (Section VI-C semantics).

    Written by the *untrusted* application before each irreversible protocol
    step so a crashed source or destination knows, on restart, which
    transaction to resume and in which direction.  It is a recovery hint
    only: deleting or forging it can at worst stall recovery (availability).
    R3/R4 never depend on it — forks and rollbacks are prevented by the
    trusted layers (freeze flag, counter destruction, ME matching).

    ``generation`` counts journal rewrites for this application; the journal
    assigns it on write so a resurrected stale record (a lying fsync under
    the disk fault model) is distinguishable from the one it shadowed.
    """

    txn_id: str
    role: str  # "source" | "destination"
    phase: str  # PHASE_PREPARE | PHASE_SHIPPED | PHASE_ARRIVED
    source: str  # source machine address
    destination: str  # destination machine address
    retries: int = 0
    generation: int = 0

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "txn": self.txn_id,
                "role": self.role,
                "phase": self.phase,
                "source": self.source,
                "destination": self.destination,
                "retries": self.retries,
                "gen": self.generation,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MigrationRecord":
        fields = wire.decode(data)
        return cls(
            txn_id=fields["txn"],
            role=fields["role"],
            phase=fields["phase"],
            source=fields["source"],
            destination=fields["destination"],
            retries=fields["retries"],
            generation=fields.get("gen", 0),
        )


@dataclass
class MigrationJournal:
    """One application's migration-in-progress record on one machine's disk.

    ``owner`` is the application name; the record lives under the same
    per-application prefix as the app's other blobs.

    Crash consistency: updates go write-temp → fsync-temp → atomic rename,
    so at every instant the journal path holds either the complete previous
    record or the complete new one (modulo injected disk faults, which the
    generation counter and :meth:`read`'s corruption accounting make
    detectable).
    """

    storage: UntrustedStorage
    owner: str

    @property
    def path(self) -> str:
        return f"{self.owner}/{MIGRATION_JOURNAL_PATH}"

    @property
    def _tmp_path(self) -> str:
        return f"{self.path}.tmp"

    def write(self, record: MigrationRecord) -> None:
        current = self._read(count_corruption=False)
        record = replace(
            record, generation=(current.generation if current else 0) + 1
        )
        self.storage.write(self._tmp_path, record.to_bytes())
        self.storage.sync(self._tmp_path)
        self.storage.rename(self._tmp_path, self.path)

    def read(self) -> MigrationRecord | None:
        return self._read(count_corruption=True)

    def _read(self, count_corruption: bool) -> MigrationRecord | None:
        if not self.storage.exists(self.path):
            return None
        try:
            return MigrationRecord.from_bytes(self.storage.read(self.path))
        except (wire.WireError, KeyError):
            # Corrupted journal == no journal (it is a recovery hint only),
            # but recovery must be able to *see* that it took this path.
            if count_corruption:
                self.storage.journal_corruption_count += 1
            return None

    def clear(self) -> None:
        self.storage.delete(self._tmp_path)
        self.storage.delete(self.path)
        self.storage.sync(self._tmp_path)
        self.storage.sync(self.path)
