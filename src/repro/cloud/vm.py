"""Virtual machines and the untrusted applications that run in them.

A :class:`VirtualMachine` belongs to one physical machine at a time (live
migration re-homes it).  An :class:`Application` is the *untrusted* part of
an SGX application: it launches enclaves, stores their sealed blobs, relays
their network traffic, and — crucially for the paper's attacks — can crash,
terminate, or restart at any time, destroying its enclaves' volatile state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import InvalidStateError
from repro.sgx.enclave import Enclave
from repro.sgx.identity import SigningKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.machine import PhysicalMachine


@dataclass
class VirtualMachine:
    """A guest (or management) VM on a physical machine."""

    name: str
    machine: "PhysicalMachine"
    memory_bytes: int = 1 << 30  # 1 GiB default; drives migration time
    is_management: bool = False
    applications: list["Application"] = field(default_factory=list)

    def launch_application(self, name: str) -> "Application":
        app = Application(name=name, vm=self)
        self.applications.append(app)
        return app

    def shutdown(self) -> None:
        """Guest shutdown destroys every enclave in the VM."""
        for app in self.applications:
            app.terminate()


@dataclass
class Application:
    """The untrusted host process of one or more enclaves."""

    name: str
    vm: VirtualMachine
    enclaves: list[Enclave] = field(default_factory=list)
    running: bool = True

    @property
    def machine(self) -> "PhysicalMachine":
        return self.vm.machine

    def launch_enclave(
        self,
        enclave_class: type,
        signing_key: SigningKey,
        config: bytes = b"",
        isv_prod_id: int = 0,
        isv_svn: int = 0,
    ) -> Enclave:
        """Create and initialize an enclave inside this application."""
        if not self.running:
            raise InvalidStateError(f"application {self.name} is not running")
        enclave = self.machine.load_enclave(
            self.vm,
            enclave_class,
            signing_key,
            config=config,
            isv_prod_id=isv_prod_id,
            isv_svn=isv_svn,
        )
        self.enclaves.append(enclave)
        return enclave

    # ------------------------------------------------------- untrusted I/O
    def store(self, path: str, data: bytes) -> None:
        """Persist a blob (e.g. a sealed buffer) on the machine's disk,
        durably: the write is fsynced before this returns, so a machine
        crash never silently discards it (it can still be torn or dropped
        by an injected disk fault — that is the fault model's job)."""
        blob_path = f"{self.name}/{path}"
        self.machine.storage.write(blob_path, data)
        self.machine.storage.sync(blob_path)

    def store_atomic(self, path: str, data: bytes) -> None:
        """Durably *replace* a blob: write a temp, fsync it, rename over the
        target.  At every crash point the target holds either the complete
        old value or the complete new one — the discipline every
        migration-critical single-file artifact (library state, journals)
        must follow under the disk fault model."""
        blob_path = f"{self.name}/{path}"
        tmp_path = f"{blob_path}.tmp"
        self.machine.storage.write(tmp_path, data)
        self.machine.storage.sync(tmp_path)
        self.machine.storage.rename(tmp_path, blob_path)

    def load(self, path: str) -> bytes:
        return self.machine.storage.read(f"{self.name}/{path}")

    def has_stored(self, path: str) -> bool:
        return self.machine.storage.exists(f"{self.name}/{path}")

    def delete_stored(self, path: str) -> None:
        blob_path = f"{self.name}/{path}"
        self.machine.storage.delete(blob_path)
        self.machine.storage.sync(blob_path)

    def send(self, dst_address, payload: bytes, *, timeout: float | None = None) -> bytes:
        """Send over the (untrusted) data-center network."""
        return self.machine.network.send(
            self.machine.address, dst_address, payload, timeout=timeout
        )

    # ----------------------------------------------------------- lifecycle
    def _destroy_enclaves(self) -> None:
        for enclave in self.enclaves:
            self.machine.on_enclave_destroyed(enclave)
            enclave.destroy()

    def crash(self) -> None:
        """Abrupt process death: enclaves are lost without warning."""
        self._destroy_enclaves()
        self.running = False

    def terminate(self) -> None:
        """Graceful exit. (Well-designed enclaves have persisted their
        state by now; the paper assumes they are signalled first.)"""
        self._destroy_enclaves()
        self.running = False

    def restart(self) -> None:
        """Start the application process again (fresh enclave handles)."""
        self.enclaves = [e for e in self.enclaves if e.alive]
        self.running = True


def ocall_dispatcher(enclave: Enclave) -> Any:
    """Build the OCALL dispatch closure the TrustedRuntime calls out through."""

    def dispatch(name: str, args: tuple, kwargs: dict) -> Any:
        handler = enclave.ocall_handlers.get(name)
        if handler is None:
            raise InvalidStateError(f"no OCALL handler registered for {name!r}")
        return handler(*args, **kwargs)

    return dispatch
