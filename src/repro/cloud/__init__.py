"""Cloud substrate: machines, VMs, hypervisor, network, storage, KDC."""

from repro.cloud.datacenter import DataCenter, ProviderCredential
from repro.cloud.hypervisor import Hypervisor, MigrationReport
from repro.cloud.kdc import KeyDistributionCenter, shared_storage
from repro.cloud.machine import PhysicalMachine
from repro.cloud.network import Network
from repro.cloud.proxy import ProxiedPse
from repro.cloud.storage import StorageError, UntrustedStorage
from repro.cloud.vm import Application, VirtualMachine

__all__ = [
    "DataCenter",
    "ProviderCredential",
    "Hypervisor",
    "MigrationReport",
    "KeyDistributionCenter",
    "shared_storage",
    "PhysicalMachine",
    "Network",
    "ProxiedPse",
    "StorageError",
    "UntrustedStorage",
    "Application",
    "VirtualMachine",
]
