"""A physical SGX-capable machine: CPU + platform software + storage + NIC.

Wires together everything a host contributes to the simulation: the SGX CPU
(fuse secrets), the EPC, Platform Services (in the management VM), the
Quoting Enclave (EPID member key provisioned at "manufacturing"), untrusted
disk, and the network attachment.  Enclaves launched in guest VMs reach the
PSE through the Section VI-C proxy pair; enclaves in the management VM (the
Migration Enclave) talk to it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.proxy import ProxiedPse
from repro.cloud.storage import UntrustedStorage
from repro.cloud.vm import Application, VirtualMachine, ocall_dispatcher
from repro.crypto.epid import EpidMemberKey
from repro.errors import InvalidParameterError
from repro.sgx.cpu import SgxCpu
from repro.sgx.enclave import Enclave, build_identity
from repro.sgx.epc import EnclavePageCache
from repro.sgx.identity import SigningKey
from repro.sgx.launch import LaunchControl
from repro.sgx.platform_services import PlatformServices
from repro.sgx.quote import QuotingEnclave
from repro.sgx.sdk import TrustedRuntime
from repro.sim.costs import CostMeter
from repro.sim.rng import DeterministicRng

if True:  # separate import block to avoid a circular import at type level
    from repro.cloud.network import Network


@dataclass
class PhysicalMachine:
    """One host in the data center."""

    name: str
    rng: DeterministicRng
    meter: CostMeter
    network: Network
    epid_member: EpidMemberKey
    cpu: SgxCpu = field(init=False)
    pse: PlatformServices = field(init=False)
    epc: EnclavePageCache = field(init=False)
    quoting_enclave: QuotingEnclave = field(init=False)
    storage: UntrustedStorage = field(init=False)
    management_vm: VirtualMachine = field(init=False)
    vms: list[VirtualMachine] = field(default_factory=list)
    enclaves: list[Enclave] = field(default_factory=list)
    _enclave_seq: int = 0

    def __post_init__(self) -> None:
        self.cpu = SgxCpu(self.name, self.rng.child("cpu"), self.meter)
        self.pse = PlatformServices(self.name, self.rng.child("pse"), self.meter)
        self.epc = EnclavePageCache(self.rng.child("epc"))
        self.launch_control = LaunchControl(self.name, self.rng.child("launch"))
        self.quoting_enclave = QuotingEnclave(self.cpu, self.epid_member)
        self.storage = UntrustedStorage(self.name)
        self.management_vm = VirtualMachine(
            name=f"{self.name}-mgmt", machine=self, is_management=True
        )
        self.vms.append(self.management_vm)

    @property
    def address(self) -> str:
        return self.name

    # ------------------------------------------------------------------ VMs
    def create_vm(self, name: str, memory_bytes: int = 1 << 30) -> VirtualMachine:
        if any(vm.name == name for vm in self.vms):
            raise InvalidParameterError(f"VM {name!r} already exists on {self.name}")
        vm = VirtualMachine(name=name, machine=self, memory_bytes=memory_bytes)
        self.vms.append(vm)
        return vm

    def adopt_vm(self, vm: VirtualMachine) -> None:
        """Attach a VM arriving via live migration."""
        vm.machine = self
        self.vms.append(vm)

    def release_vm(self, vm: VirtualMachine) -> None:
        self.vms.remove(vm)

    # ------------------------------------------------------------- enclaves
    def load_enclave(
        self,
        vm: VirtualMachine,
        enclave_class: type,
        signing_key: SigningKey,
        config: bytes = b"",
        isv_prod_id: int = 0,
        isv_svn: int = 0,
    ) -> Enclave:
        """EINIT analogue: measure, check SIGSTRUCT, instantiate."""
        if self.meter.recorder is not None:
            # Trace capture: the whole load (measurement, launch control,
            # on_load) executes on this machine's CPU in the replay.
            with self.meter.located(self.name):
                return self._load_enclave(
                    vm, enclave_class, signing_key, config, isv_prod_id, isv_svn
                )
        return self._load_enclave(
            vm, enclave_class, signing_key, config, isv_prod_id, isv_svn
        )

    def _load_enclave(
        self,
        vm: VirtualMachine,
        enclave_class: type,
        signing_key: SigningKey,
        config: bytes = b"",
        isv_prod_id: int = 0,
        isv_svn: int = 0,
    ) -> Enclave:
        if vm.machine is not self:
            raise InvalidParameterError(f"VM {vm.name} is not on machine {self.name}")
        identity = build_identity(enclave_class, signing_key, config, isv_prod_id, isv_svn)
        # Launch control: obtain + check the EINIT token before running.
        token = self.launch_control.get_token(identity)
        if not self.launch_control.verify_token(identity, token):
            raise InvalidParameterError("EINIT token rejected")
        pse_access = self.pse if vm.is_management else ProxiedPse(self.pse, self.meter)
        # Machine-local enclave ids keep RNG streams (and thus every sealed
        # blob) a pure function of the simulation seed.
        self._enclave_seq += 1
        enclave = Enclave(
            enclave_class=enclave_class,
            identity=identity,
            trusted=None,  # type: ignore[arg-type] - set right below
            meter=self.meter,
            enclave_id=f"{self.name}-enc-{self._enclave_seq}",
            machine_name=self.name,
        )
        runtime = TrustedRuntime(
            cpu=self.cpu,
            identity=identity,
            pse=pse_access,
            quoting_enclave=self.quoting_enclave,
            rng=self.rng.child(f"enclave-{enclave.enclave_id}"),
            ocall_dispatch=ocall_dispatcher(enclave),
        )
        # This is the EINIT analogue itself: the loader creates the trusted
        # instance exactly once, before any ECALL can run.  No enclave state
        # exists yet to leak, so the boundary rule does not apply here.
        enclave.trusted = enclave_class(runtime)  # repro: ignore[SEC002]
        enclave.trusted.on_load()  # repro: ignore[SEC002]
        self.enclaves.append(enclave)
        return enclave

    def on_enclave_destroyed(self, enclave: Enclave) -> None:
        self.epc.evict_enclave(enclave.enclave_id)
        if enclave in self.enclaves:
            self.enclaves.remove(enclave)

    # --------------------------------------------------------- power events
    def hibernate(self) -> None:
        """Hibernate/shutdown: the EPC key rolls, every enclave dies.

        Platform Services counters *survive* (they live in ME flash), as do
        untrusted disk contents — exactly the asymmetry that forces enclaves
        to keep persistent state.  An orderly shutdown flushes the disk's
        write-back buffer on the way down.
        """
        for vm in self.vms:
            for app in vm.applications:
                app.crash()
        self.epc.power_cycle()
        self.storage.sync()

    def crash(self) -> None:
        """Abrupt power failure, the fault injector's favourite weapon.

        Like :meth:`hibernate` every enclave dies and the EPC key rolls, but
        additionally every network endpoint hosted here vanishes — peers see
        connection failures until services are reinstalled.  PSE counters
        (ME flash) survive; the untrusted disk keeps only what was synced —
        unsynced writes are discarded and a torn-marked in-flight write
        lands partially (see :meth:`UntrustedStorage.crash`).  Recovery
        remains possible from the durable image.
        """
        for vm in self.vms:
            for app in vm.applications:
                app.crash()
        self.epc.power_cycle()
        self.storage.crash()
        self.network.unregister_machine(self.name)

    # -------------------------------------------------------------- helpers
    def applications(self) -> list[Application]:
        return [app for vm in self.vms for app in vm.applications]
