"""PSE access proxies (Section VI-C of the paper).

Under SGX virtualization, Platform Services run in the management VM (the
hardware the PSE needs is assigned to that VM), while application enclaves
live in guest VMs.  The SGX SDK talks to the PSE over a Unix socket, so the
paper inserts **two proxies**: one in the guest VM exposing the Unix socket
and forwarding over TCP, and one in the management VM receiving TCP and
forwarding to the real PSE socket.

The original channel was already readable by the untrusted OS, so proxying
it does not weaken security — we model that by charging the extra hop's
latency while performing the same (unprotected) PSE transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceUnavailableError, SgxStatus
from repro.sgx.identity import EnclaveIdentity
from repro.sgx.platform_services import CounterUuid, PlatformServices
from repro.sim.costs import CostMeter


@dataclass
class ProxiedPse:
    """Guest-VM view of the PSE: same interface, one extra hop per call.

    Implements the :class:`~repro.sgx.sdk.PseAccess` protocol, so enclaves
    cannot tell (apart from latency) whether their PSE link is proxied.
    """

    pse: PlatformServices
    meter: CostMeter
    connected: bool = True

    def _hop(self) -> None:
        if not self.connected:
            raise ServiceUnavailableError("PSE proxy connection down")
        # guest Unix socket -> guest proxy -> TCP -> management proxy -> PSE
        self.meter.charge("pse_proxy_hop", self.meter.model.net_local_rtt)

    def create_counter(self, identity: EnclaveIdentity) -> tuple[CounterUuid, int]:
        self._hop()
        return self.pse.create_counter(identity)

    def read_counter(self, identity: EnclaveIdentity, uuid: CounterUuid) -> int:
        self._hop()
        return self.pse.read_counter(identity, uuid)

    def increment_counter(self, identity: EnclaveIdentity, uuid: CounterUuid) -> int:
        self._hop()
        return self.pse.increment_counter(identity, uuid)

    def destroy_counter(self, identity: EnclaveIdentity, uuid: CounterUuid) -> SgxStatus:
        self._hop()
        return self.pse.destroy_counter(identity, uuid)

    def disconnect(self) -> None:
        """Simulate the guest proxy losing its TCP connection."""
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True
