"""Simulation substrate: virtual time, calibrated cost model, deterministic
RNG, and the discrete-event scheduler for concurrent virtual-time work."""

from repro.sim.clock import Timer, VirtualClock
from repro.sim.costs import CostMeter, CostModel
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import (
    Charge,
    EventQueue,
    Process,
    Scheduler,
    Sleep,
    TraceRecorder,
    Transfer,
)

__all__ = [
    "Timer",
    "VirtualClock",
    "CostMeter",
    "CostModel",
    "DeterministicRng",
    "Charge",
    "EventQueue",
    "Process",
    "Scheduler",
    "Sleep",
    "TraceRecorder",
    "Transfer",
]
