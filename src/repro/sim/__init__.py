"""Simulation substrate: virtual time, calibrated cost model, deterministic RNG."""

from repro.sim.clock import Timer, VirtualClock
from repro.sim.costs import CostMeter, CostModel
from repro.sim.rng import DeterministicRng

__all__ = ["Timer", "VirtualClock", "CostMeter", "CostModel", "DeterministicRng"]
