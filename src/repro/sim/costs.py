"""Cost model calibrated to the magnitudes reported in the paper.

Every constant is the *mean* virtual-time cost of one primitive operation.
Components charge these costs to their machine's :class:`~repro.sim.clock.
VirtualClock` as they execute, with small multiplicative Gaussian noise so
that confidence intervals and t-tests behave like real measurements.

Calibration sources (Section VII-B of the paper):

* Monotonic counter ECALLs take 0.05–0.35 s, dominated by the round trip to
  the Platform Services / Management Engine, which is also rate-limited.
* Sealing ECALLs take 0.2–0.8 ms depending on payload size; the baseline
  pays an extra ``EGETKEY`` per call while the Migration Library reuses the
  cached MSK (which is why migratable sealing is *slightly faster*).
* One enclave migration costs 0.47 ± 0.035 s on top of VM migration, which
  itself takes "in the order of seconds".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvalidStateError
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


@dataclass
class CostModel:
    """Mean costs (seconds) of simulated primitives plus a noise level.

    ``rel_noise`` is the relative standard deviation applied to every charge;
    ``abs_noise`` is an additive jitter floor so that even near-zero costs
    show measurement spread, as a real timer would.
    """

    # --- ECALL / OCALL transition overhead -------------------------------
    ecall: float = 8.0e-6
    ocall: float = 6.0e-6

    # --- CPU crypto primitives -------------------------------------------
    egetkey: float = 1.2e-5          # sealing-key derivation instruction
    ereport: float = 3.0e-5          # local-attestation report generation
    aes_gcm_base: float = 6.0e-5     # fixed AEAD setup (IV, tag, J0)
    aes_gcm_per_byte: float = 4.0e-9  # bulk AES-NI-style throughput
    sha256_base: float = 1.5e-6
    sha256_per_byte: float = 1.0e-9
    dh_keygen: float = 3.0e-4        # modular exponentiation
    dh_shared: float = 3.0e-4
    signature_sign: float = 4.0e-4
    signature_verify: float = 5.0e-4
    epid_sign: float = 5.0e-2        # EPID group signatures are slow
    epid_verify: float = 2.0e-2

    # --- Platform Services (PSE / Management Engine) round trips ---------
    # Rate-limited firmware transactions; by far the dominant costs.
    pse_session: float = 1.2e-2
    pse_create_counter: float = 0.239
    pse_increment_counter: float = 0.1445
    pse_read_counter: float = 0.0595
    pse_destroy_counter: float = 0.308

    # --- Migration Library internal bookkeeping ---------------------------
    # Wrapper work on top of the raw PSE call: id translation, the offset
    # addition, overflow checks, and (for create/destroy) resealing the
    # library's internal persistent buffer.  Calibrated so the increment
    # wrapper lands at the paper's reported 12.3 % overhead and the read
    # wrapper stays inside measurement noise (paper: p ~= 0.12).
    lib_counter_increment_wrap: float = 0.0178
    lib_counter_read_wrap: float = 1.5e-5
    lib_counter_array_ops: float = 6.0e-3

    # --- Quoting / remote attestation -------------------------------------
    quote_generation: float = 1.67e-1  # local attestation to QE + EPID sign
    ias_verification: float = 6.5e-2   # remote round trip to the IAS

    # --- Network ----------------------------------------------------------
    net_local_rtt: float = 2.0e-4      # same-host (VM<->management VM)
    net_dc_rtt: float = 5.0e-4         # cross-host inside the data center
    net_bandwidth_bytes_per_s: float = 1.25e9   # 10 Gbit/s data-center links

    # --- VM live migration -----------------------------------------------
    vm_migration_fixed: float = 0.35   # handshake, device state, switchover
    vm_dirty_round_fraction: float = 0.08  # pages re-dirtied per pre-copy round

    # --- noise ------------------------------------------------------------
    rel_noise: float = 0.018
    abs_noise: float = 2.5e-6

    def noisy(self, mean_cost: float, rng: DeterministicRng) -> float:
        """Sample an observed duration for an operation of ``mean_cost``."""
        if mean_cost < 0:
            raise ValueError(f"negative cost: {mean_cost}")
        noise = rng.gauss(0.0, mean_cost * self.rel_noise + self.abs_noise)
        return max(0.0, mean_cost + noise)

    def transfer_time(self, num_bytes: int) -> float:
        """Time to push ``num_bytes`` over a data-center link."""
        return num_bytes / self.net_bandwidth_bytes_per_s


@dataclass
class CostMeter:
    """Binds a :class:`CostModel` to a clock and RNG and charges costs.

    One meter exists per data center, so all components share a clock and
    experiments stay deterministic under a seed.

    Trace capture (the discrete-event concurrency path): attaching a
    recorder via :meth:`recording` diverts every charge into it instead of
    the clock — the protocol code runs unchanged (same calls, same RNG
    draws) while the clock stays frozen; the recorded trace is later
    replayed by :class:`~repro.sim.scheduler.Scheduler` with resource
    contention, and only then does the clock move.  The :meth:`located` and
    :meth:`on_link` contexts attribute charges to a machine's CPU or a
    directed network link for that replay; both are inert no-ops whenever
    no recorder is attached, which is how every sequential code path stays
    byte-identical.
    """

    model: CostModel
    clock: VirtualClock
    rng: DeterministicRng
    enabled: bool = True
    charges: list[tuple[str, float]] = field(default_factory=list)
    #: Trace sink (``record(label, seconds, location, link)``); ``None`` =
    #: normal operation, charges advance the clock directly.
    recorder: Any = None
    #: Machine currently accountable for CPU charges (recording only).
    location: str | None = None
    #: Directed link ``(src_machine, dst_machine)`` accountable for network
    #: charges (recording only).
    link: tuple[str, str] | None = None

    def charge(self, label: str, mean_cost: float) -> float:
        """Charge a noisy sample of ``mean_cost``; returns the charged time."""
        if not self.enabled:
            return 0.0
        cost = self.model.noisy(mean_cost, self.rng)
        self._commit(label, cost)
        return cost

    def charge_exact(self, label: str, cost: float) -> float:
        """Charge an exact (noise-free) cost, e.g. deterministic transfer."""
        if not self.enabled:
            return 0.0
        self._commit(label, cost)
        return cost

    def _commit(self, label: str, cost: float) -> None:
        if self.recorder is not None:
            self.recorder.record(label, cost, self.location, self.link)
        else:
            self.clock.advance(cost)
        self.charges.append((label, cost))

    def reset_charges(self) -> None:
        self.charges.clear()

    # ----------------------------------------------------- trace attribution
    @contextmanager
    def recording(self, recorder: Any):
        """Divert charges into ``recorder`` for the duration of the block.

        Not reentrant: one trace is recorded at a time (concurrency comes
        from replaying many traces, not from nesting recordings).
        """
        if self.recorder is not None:
            raise InvalidStateError("a trace recording is already in progress")
        self.recorder = recorder
        try:
            yield recorder
        finally:
            self.recorder = None
            self.location = None
            self.link = None

    @contextmanager
    def located(self, machine: str):
        """Attribute CPU charges in the block to ``machine``."""
        previous, self.location = self.location, machine
        try:
            yield
        finally:
            self.location = previous

    @contextmanager
    def on_link(self, src_machine: str, dst_machine: str):
        """Attribute network charges in the block to the directed link."""
        previous, self.link = self.link, (src_machine, dst_machine)
        try:
            yield
        finally:
            self.link = previous
