"""Deterministic randomness for the whole simulation.

Real SGX hardware draws keys from ``RDRAND`` and fuse-derived secrets.  For a
reproducible simulation every source of randomness — key generation, nonces,
counter UUIDs, measurement noise — flows through a :class:`DeterministicRng`
seeded from a single experiment seed.  Children are derived by label, so
adding a new consumer does not perturb the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A labelled, fork-able deterministic random generator.

    Wraps :class:`random.Random` (Mersenne Twister) seeded from SHA-256 of
    the parent seed material plus a label.  Cryptographic *security* is not a
    goal here — the simulator's threat model never includes guessing the
    simulation RNG — but determinism and stream independence are.
    """

    def __init__(self, seed: int | str | bytes = 0, label: str = "root"):
        if isinstance(seed, int):
            seed_bytes = seed.to_bytes(16, "big", signed=False) if seed >= 0 else str(seed).encode()
        elif isinstance(seed, str):
            seed_bytes = seed.encode()
        else:
            seed_bytes = bytes(seed)
        self._material = hashlib.sha256(seed_bytes + b"|" + label.encode()).digest()
        self._random = random.Random(int.from_bytes(self._material, "big"))
        self.label = label

    def child(self, label: str) -> "DeterministicRng":
        """Derive an independent stream identified by ``label``."""
        return DeterministicRng(self._material, label)

    def random_bytes(self, n: int) -> bytes:
        return self._random.randbytes(n)

    def random_u32(self) -> int:
        return self._random.getrandbits(32)

    def random_u64(self) -> int:
        return self._random.getrandbits(64)

    def randint_below(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)``."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        return self._random.randrange(upper)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def uniform(self, a: float, b: float) -> float:
        return self._random.uniform(a, b)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)
