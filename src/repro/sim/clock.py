"""Virtual time for deterministic, hardware-free performance experiments.

The paper measures wall-clock durations of ECALLs on real SGX hardware.  We
have no SGX hardware, so every simulated component *charges* time to a
:class:`VirtualClock` instead: the CPU charges for AES rounds and EGETKEY,
Platform Services charges its (rate-limited) counter round-trips, and the
network charges latency and transfer time.  Benchmarks then read elapsed
virtual time exactly as the paper reads elapsed wall time.

Because costs are charged by the code paths actually executed (an extra seal
on counter create really performs — and charges — a seal), relative shapes
such as "increment is 12.3 % slower with the Migration Library" emerge from
the implementation rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class VirtualClock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of virtual time. Negative charges are invalid."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds

    def advance_to(self, instant: float) -> None:
        """Jump forward to an absolute virtual instant (never backward).

        This is the :class:`~repro.sim.scheduler.Scheduler`'s interface: as
        the event engine dispatches timed events it drags the clock along,
        so during a scheduler run the clock is a view over the event clock.
        """
        if instant < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {instant}"
            )
        self._now = instant

    def timer(self) -> "Timer":
        """Start a stopwatch against this clock."""
        return Timer(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"


@dataclass
class Timer:
    """Stopwatch over a :class:`VirtualClock`."""

    clock: VirtualClock
    started_at: float = field(init=False)

    def __post_init__(self) -> None:
        self.started_at = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.started_at

    def restart(self) -> float:
        """Return elapsed time and reset the start point."""
        elapsed = self.elapsed
        self.started_at = self.clock.now
        return elapsed
