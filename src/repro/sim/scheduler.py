"""Deterministic discrete-event simulation core.

The synchronous simulator executes one call stack at a time: ``Network.send``
is a nested function call and :class:`~repro.sim.clock.VirtualClock` is a
single serial timeline, so two migrations can never overlap in virtual time.
This module supplies the missing half: a :class:`Scheduler` that owns a
priority queue of timed events (stable FIFO tie-breaking, so a seed fully
determines the event order) and a cooperative process abstraction —
generator-based coroutines that ``yield`` :class:`Charge`, :class:`Transfer`,
and :class:`Sleep` segments.

Resources are *contended*, not summed:

* **CPU** — charges on one machine serialize FIFO (non-preemptive); charges
  on different machines overlap freely.
* **Links** — concurrent transfers on the same directed ``src -> dst`` link
  share the pipe via processor sharing (each of *n* in-flight transfers
  progresses at ``1/n`` of link rate, recomputed at every join/finish).
* **Sleeps** — pure latency (RTTs, retry backoff, injected fault delays);
  contend with nothing.

How the sequential paths stay wire-byte identical: concurrency is layered
*on top* of the existing synchronous protocol via record-then-replay.  A
:class:`TraceRecorder` attached to the :class:`~repro.sim.costs.CostMeter`
diverts every charge into a per-process trace instead of the clock while the
protocol runs exactly as before (same calls, same RNG draws, same bytes on
the wire); the recorded traces are then replayed as concurrent scheduler
processes, and only *then* does the clock advance — to the makespan the
contended schedule produced.  Code that never records (every sequential
entry point) never touches this module and charges the clock exactly as it
always has.

The scheduler drives the clock it is given: every event dispatch calls
:meth:`VirtualClock.advance_to`, making the ``VirtualClock`` a live view
over the scheduler's event clock for the duration of a run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Generator, Iterable

from repro.errors import InvalidParameterError, InvalidStateError
from repro.sim.clock import VirtualClock

#: Residual link demand below this is a completed transfer (absorbs the
#: float error of settling elapsed processor-sharing time).  The tolerance
#: must also scale with the clock reading: at ``now ~ 1e2`` one ulp is
#: ``~1e-14``, so an absolute-only epsilon can leave a residue too small to
#: ever advance the clock — a zero-time event loop.  See :func:`_finished`.
_LINK_EPSILON = 1e-15
_LINK_REL_EPSILON = 1e-12


def _finished(remaining: float, now: float) -> bool:
    """Is a transfer with ``remaining`` full-rate seconds of demand done?

    True when the residue is below the absolute epsilon *or* below the
    relative tolerance at the current clock magnitude (a residue that small
    could not measurably delay the completion anyway).
    """
    return remaining <= max(_LINK_EPSILON, abs(now) * _LINK_REL_EPSILON)

#: Meter labels that are pure latency: they occupy neither a CPU nor a link.
LATENCY_LABELS = frozenset({"net_rtt", "retry_backoff", "fault_delay"})

#: The meter label the network charges for bandwidth-proportional time.
TRANSFER_LABEL = "net_transfer"


# ------------------------------------------------------------------ segments
@dataclass(frozen=True)
class Charge:
    """Occupy one machine's CPU for ``seconds`` (FIFO, non-preemptive).

    ``machine=None`` resolves to the owning process's home machine.
    """

    seconds: float
    machine: str | None = None
    label: str = "cpu"


@dataclass(frozen=True)
class Sleep:
    """Pure delay — latency, backoff; contends with nothing."""

    seconds: float
    label: str = "sleep"


@dataclass(frozen=True)
class Transfer:
    """Demand ``seconds`` of full-rate time on the directed ``src -> dst``
    link; concurrent transfers on the link share its rate fairly."""

    seconds: float
    src: str
    dst: str
    label: str = TRANSFER_LABEL


Segment = Charge | Sleep | Transfer


def _normalize(segment: Any) -> Segment:
    if isinstance(segment, (Charge, Sleep, Transfer)):
        return segment
    if isinstance(segment, (int, float)):
        return Sleep(float(segment))
    raise InvalidParameterError(
        f"process yielded {segment!r}; expected Charge/Sleep/Transfer or seconds"
    )


# --------------------------------------------------------------- event queue
@dataclass(order=True)
class Event:
    """One scheduled occurrence; ``seq`` breaks time ties FIFO."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Priority queue of timed events with stable FIFO tie-breaking.

    Two events at the same virtual instant fire in the order they were
    scheduled — the property that makes a seed fully determine a run.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        event = Event(time=time, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


# ------------------------------------------------------------------- process
@dataclass
class Process:
    """One cooperative coroutine driven by the scheduler.

    ``admitted_at`` is when the process took its first step: equal to
    ``started_at`` for ungated spawns, later for processes spawned with
    ``after=`` dependencies (the pipelined-dispatch admission seam).
    """

    name: str
    home: str | None
    gen: Generator[Any, None, None] = field(repr=False)
    started_at: float = 0.0
    finished_at: float | None = None
    admitted_at: float | None = None
    #: Unfinished dependencies still gating admission (``after=`` spawns).
    waiting_on: int = field(default=0, repr=False)
    #: Processes whose admission waits on this one finishing.
    dependents: "list[Process]" = field(default_factory=list, repr=False)

    @property
    def done(self) -> bool:
        return self.finished_at is not None


class _Link:
    """Processor-sharing state of one directed link.

    ``members`` maps a transfer token to its remaining full-rate demand in
    seconds; with *n* members each progresses at rate ``1/n``.  The link
    settles elapsed time lazily at every membership change and keeps a
    version counter so superseded completion events are ignored.
    """

    def __init__(self, key: tuple[str, str]) -> None:
        self.key = key
        self.members: dict[int, tuple[float, Process]] = {}
        self.last_settled = 0.0
        self.version = 0
        # Utilization accounting: wall of virtual time with >= 1 transfer in
        # flight, total transfers carried, and the deepest sharing observed.
        self.busy_seconds = 0.0
        self.transfers_total = 0
        self.max_concurrent = 0

    def settle(self, now: float) -> None:
        n = len(self.members)
        if n:
            share = (now - self.last_settled) / n
            for token, (remaining, proc) in self.members.items():
                self.members[token] = (remaining - share, proc)
            self.busy_seconds += now - self.last_settled
        self.last_settled = now

    def next_completion(self, now: float) -> float | None:
        if not self.members:
            return None
        shortest = min(remaining for remaining, _ in self.members.values())
        return now + max(shortest, 0.0) * len(self.members)


class Scheduler:
    """A deterministic discrete-event engine over a :class:`VirtualClock`.

    Spawn processes, then :meth:`run`; the clock is advanced event by event
    (``advance_to``) so ``clock.now`` is a view of the event clock while the
    scheduler runs.  Per-machine CPU busy totals, per-process completion
    times, and the full event log are exposed for tests and golden pins.
    """

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._now = self.clock.now
        self._started_at = self._now
        self._queue = EventQueue()
        self.processes: list[Process] = []
        self._cpu_free: dict[str, float] = {}
        self.cpu_busy: dict[str, float] = {}
        self.cpu_queued_wait: dict[str, float] = {}
        self._cpu_pending: dict[str, int] = {}
        self.cpu_max_queue_depth: dict[str, int] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self._token = itertools.count()
        self.event_log: list[dict] = []
        self._running = False

    # ------------------------------------------------------------- spawning
    @property
    def now(self) -> float:
        return self._now

    def spawn(
        self,
        name: str,
        gen: Generator[Any, None, None] | Iterable[Any],
        *,
        home: str | None = None,
        after: Iterable[Process] = (),
    ) -> Process:
        """Register a coroutine; it takes its first step when :meth:`run`
        reaches its start event (scheduled immediately, FIFO with peers).

        ``after`` is the admission gate of pipelined dispatch: the process
        holds its first step until every listed process has finished, then
        starts at exactly that virtual instant (FIFO with peers admitted at
        the same time).  Dependencies already finished at spawn time gate
        nothing; an empty ``after`` reproduces the ungated behavior — and
        the ungated event log — verbatim.
        """
        process = Process(name=name, home=home, gen=iter(gen), started_at=self._now)
        self.processes.append(process)
        pending = [dep for dep in after if not dep.done]
        if pending:
            process.waiting_on = len(pending)
            for dep in pending:
                dep.dependents.append(process)
            self._log("spawn", process.name, waiting_on=len(pending))
        else:
            process.admitted_at = self._now
            self._log("spawn", process.name)
            self._queue.push(self._now, lambda: self._step(process))
        return process

    def _admit(self, process: Process) -> None:
        process.admitted_at = self._now
        self._log("admit", process.name)
        self._queue.push(self._now, lambda: self._step(process))

    # ------------------------------------------------------------ execution
    def run(self) -> float:
        """Drain the event queue; returns (and leaves the clock at) the
        virtual time of the last event — the schedule's makespan."""
        if self._running:
            raise InvalidStateError("scheduler is already running")
        self._running = True
        try:
            while len(self._queue):
                event = self._queue.pop()
                if event.time > self._now:
                    self._now = event.time
                    self.clock.advance_to(self._now)
                event.action()
        finally:
            self._running = False
        for process in self.processes:
            if not process.done:
                raise InvalidStateError(
                    f"process {process.name!r} never finished (empty queue "
                    "with a blocked process is a scheduler bug)"
                )
        return self._now

    # ----------------------------------------------------------- dispatching
    def _step(self, process: Process) -> None:
        try:
            segment = _normalize(next(process.gen))
        except StopIteration:
            process.finished_at = self._now
            self._log("exit", process.name)
            for dependent in process.dependents:
                dependent.waiting_on -= 1
                if dependent.waiting_on == 0:
                    self._admit(dependent)
            return
        if isinstance(segment, Charge):
            self._dispatch_charge(process, segment)
        elif isinstance(segment, Transfer):
            self._dispatch_transfer(process, segment)
        else:
            self._log("sleep", process.name, seconds=segment.seconds)
            self._queue.push(self._now + segment.seconds, lambda: self._step(process))

    def _dispatch_charge(self, process: Process, segment: Charge) -> None:
        machine = segment.machine or process.home
        if machine is None:
            raise InvalidParameterError(
                f"process {process.name!r} charged CPU with no machine and no home"
            )
        start = max(self._now, self._cpu_free.get(machine, self._now))
        finish = start + segment.seconds
        self._cpu_free[machine] = finish
        self.cpu_busy[machine] = self.cpu_busy.get(machine, 0.0) + segment.seconds
        self.cpu_queued_wait[machine] = (
            self.cpu_queued_wait.get(machine, 0.0) + (start - self._now)
        )
        depth = self._cpu_pending.get(machine, 0) + 1
        self._cpu_pending[machine] = depth
        if depth > self.cpu_max_queue_depth.get(machine, 0):
            self.cpu_max_queue_depth[machine] = depth
        self._log(
            "charge", process.name, machine=machine, seconds=segment.seconds,
            queued=start - self._now,
        )
        self._queue.push(finish, lambda: self._finish_charge(process, machine))

    def _finish_charge(self, process: Process, machine: str) -> None:
        self._cpu_pending[machine] -= 1
        self._step(process)

    def _dispatch_transfer(self, process: Process, segment: Transfer) -> None:
        key = (segment.src, segment.dst)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = _Link(key)
            link.last_settled = self._now
        link.settle(self._now)
        link.members[next(self._token)] = (segment.seconds, process)
        link.transfers_total += 1
        if len(link.members) > link.max_concurrent:
            link.max_concurrent = len(link.members)
        self._log(
            "transfer", process.name, link=f"{segment.src}->{segment.dst}",
            seconds=segment.seconds, sharing=len(link.members),
        )
        self._reschedule_link(link)

    def _reschedule_link(self, link: _Link) -> None:
        link.version += 1
        completion = link.next_completion(self._now)
        if completion is None:
            return
        version = link.version
        self._queue.push(completion, lambda: self._link_event(link, version))

    def _link_event(self, link: _Link, version: int) -> None:
        if version != link.version:
            return  # superseded by a later join/finish
        link.settle(self._now)
        finished = [
            token
            for token, (remaining, _) in link.members.items()
            if _finished(remaining, self._now)
        ]
        for token in finished:
            _, process = link.members.pop(token)
            self._log("transfer_done", process.name, link=f"{link.key[0]}->{link.key[1]}")
            self._queue.push(self._now, lambda p=process: self._step(p))
        self._reschedule_link(link)

    # -------------------------------------------------------------- logging
    def _log(self, kind: str, process: str, **detail) -> None:
        entry = {"t": self._now, "event": kind, "process": process}
        entry.update(detail)
        self.event_log.append(entry)

    # ------------------------------------------------------------ reporting
    def makespan(self) -> float:
        """Virtual time from the first spawn to the last completion."""
        if not self.processes:
            return 0.0
        return max(p.finished_at or self._now for p in self.processes) - min(
            p.started_at for p in self.processes
        )

    def utilization_report(self) -> dict:
        """Per-resource busy fractions and queueing stats for the run.

        Makes pipelined speedups explainable: a mode that wins shows higher
        CPU/link busy fractions over a shorter makespan, not different work.
        ``summary`` is the compact slice bench metadata embeds.
        """
        span = self.makespan()

        def fraction(busy: float) -> float:
            return busy / span if span > 0 else 0.0

        cpu = {
            machine: {
                "busy_seconds": busy,
                "busy_fraction": fraction(busy),
                "queued_wait_seconds": self.cpu_queued_wait.get(machine, 0.0),
                "max_queue_depth": self.cpu_max_queue_depth.get(machine, 0),
            }
            for machine, busy in sorted(self.cpu_busy.items())
        }
        links = {
            f"{src}->{dst}": {
                "busy_seconds": link.busy_seconds,
                "busy_fraction": fraction(link.busy_seconds),
                "transfers": link.transfers_total,
                "max_concurrent": link.max_concurrent,
            }
            for (src, dst), link in sorted(self._links.items())
        }
        summary = {
            "makespan": span,
            "machines": len(cpu),
            "links": len(links),
            "mean_cpu_busy_fraction": (
                sum(stats["busy_fraction"] for stats in cpu.values()) / len(cpu)
                if cpu
                else 0.0
            ),
            "max_cpu_queue_depth": max(
                (stats["max_queue_depth"] for stats in cpu.values()), default=0
            ),
            "mean_link_busy_fraction": (
                sum(stats["busy_fraction"] for stats in links.values()) / len(links)
                if links
                else 0.0
            ),
            "max_link_concurrency": max(
                (stats["max_concurrent"] for stats in links.values()), default=0
            ),
        }
        return {"makespan": span, "cpu": cpu, "links": links, "summary": summary}


# ------------------------------------------------------------ trace capture
class TraceRecorder:
    """Captures one synchronous protocol run as a replayable segment trace.

    Attach via :meth:`CostMeter.recording <repro.sim.costs.CostMeter.
    recording>`: every charge is diverted here (the clock stays frozen) and
    classified using the meter's attribution context:

    * charges under a :meth:`~repro.sim.costs.CostMeter.on_link` context
      with the ``net_transfer`` label become :class:`Transfer` segments;
    * latency labels (RTT, retry backoff, injected fault delay) become
      :class:`Sleep` segments;
    * everything else becomes CPU :class:`Charge` on the meter's current
      :meth:`~repro.sim.costs.CostMeter.located` machine (falling back to
      the recorder's ``home``), with adjacent same-machine charges coalesced
      so replay stays compact at fleet scale.
    """

    def __init__(self, home: str | None = None) -> None:
        self.home = home
        self.segments: list[Segment] = []

    def record(
        self,
        label: str,
        seconds: float,
        location: str | None,
        link: tuple[str, str] | None,
    ) -> None:
        if label in LATENCY_LABELS:
            self.segments.append(Sleep(seconds, label))
            return
        if link is not None:
            # Any non-latency charge inside an on_link context is bandwidth
            # on that directed pipe (protocol payloads, VM pre-copy rounds).
            self.segments.append(Transfer(seconds, link[0], link[1], label))
            return
        if label == TRANSFER_LABEL:
            # Bandwidth time charged outside any link context (e.g. a disk
            # image copy): no pipe to contend on, but it is not CPU work
            # either — it replays as pure latency.
            self.segments.append(Sleep(seconds, label))
            return
        machine = location or self.home
        if self.segments:
            previous = self.segments[-1]
            if isinstance(previous, Charge) and previous.machine == machine:
                self.segments[-1] = replace(
                    previous, seconds=previous.seconds + seconds
                )
                return
        self.segments.append(Charge(seconds, machine, label))

    def replay(self) -> Generator[Segment, None, None]:
        """A fresh coroutine that re-enacts the recorded segments."""
        return (segment for segment in self.segments)

    def total_seconds(self) -> float:
        """Serial duration of the trace (what the sequential path would
        have charged): the sum of every segment's demand."""
        return sum(segment.seconds for segment in self.segments)

    def cpu_seconds(self) -> dict[str, float]:
        """Per-machine CPU demand in the trace."""
        totals: dict[str, float] = {}
        for segment in self.segments:
            if isinstance(segment, Charge):
                machine = segment.machine or self.home or "?"
                totals[machine] = totals.get(machine, 0.0) + segment.seconds
        return totals
