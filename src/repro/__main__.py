"""``python -m repro`` — guided tour of the reproduction.

Subcommands:

* ``demo``      — run the quickstart scenario end to end
* ``attacks``   — print the Section III attack matrix
* ``figures``   — alias for ``python -m repro.bench.figures all``
* ``tables``    — print Tables I and II + the TCB report (fast)
* ``analyze``   — alias for ``python -m repro.analysis`` (SEC001-SEC010)
* ``bench``     — run the migration benchmark; ``--profile`` wraps it in
  cProfile and dumps the top functions by cumulative time
"""

from __future__ import annotations

import sys


def _run_bench(argv: list[str]) -> int:
    """``python -m repro bench [--reps N] [--seed N] [--profile [TOP]]``."""
    import argparse
    import time

    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("--reps", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--profile", nargs="?", const=25, type=int, default=None, metavar="TOP",
        help="profile under cProfile and print the TOP functions by "
        "cumulative time (default 25)",
    )
    args = parser.parse_args(argv)

    from repro.bench.harness import run_migration_bench

    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        data = run_migration_bench(reps=args.reps, seed=args.seed)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile)
    else:
        start = time.perf_counter()
        data = run_migration_bench(reps=args.reps, seed=args.seed)
        print(f"wall: {time.perf_counter() - start:.3f} s")
    samples = data["enclave_migration"]
    print(
        f"enclave migration: {len(samples)} reps, "
        f"virtual mean {sum(samples) / len(samples):.3f} s"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    command = argv[0] if argv else "tables"
    if command == "demo":
        import runpy

        runpy.run_path("examples/quickstart.py", run_name="__main__")
        return 0
    if command == "attacks":
        from repro.bench.figures import attacks

        print(attacks()[0])
        return 0
    if command == "figures":
        from repro.bench.figures import main as figures_main

        return figures_main(["all"] + argv[1:])
    if command == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    if command == "bench":
        return _run_bench(argv[1:])
    if command == "tables":
        from repro.bench.figures import table1, table2, tcb

        for fn in (table1, table2, tcb):
            print(fn()[0])
            print()
        return 0
    print(__doc__)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
