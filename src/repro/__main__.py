"""``python -m repro`` — guided tour of the reproduction.

Subcommands:

* ``demo``      — run the quickstart scenario end to end
* ``attacks``   — print the Section III attack matrix
* ``figures``   — alias for ``python -m repro.bench.figures all``
* ``tables``    — print Tables I and II + the TCB report (fast)
* ``analyze``   — alias for ``python -m repro.analysis`` (SEC001-SEC006)
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    command = argv[0] if argv else "tables"
    if command == "demo":
        import runpy

        runpy.run_path("examples/quickstart.py", run_name="__main__")
        return 0
    if command == "attacks":
        from repro.bench.figures import attacks

        print(attacks()[0])
        return 0
    if command == "figures":
        from repro.bench.figures import main as figures_main

        return figures_main(["all"] + argv[1:])
    if command == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    if command == "tables":
        from repro.bench.figures import table1, table2, tcb

        for fn in (table1, table2, tcb):
            print(fn()[0])
            print()
        return 0
    print(__doc__)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
