"""``python -m repro`` — guided tour of the reproduction.

Subcommands:

* ``demo``      — run the quickstart scenario end to end
* ``attacks``   — print the Section III attack matrix
* ``figures``   — alias for ``python -m repro.bench.figures all``
* ``tables``    — print Tables I and II + the TCB report (fast)
* ``analyze``   — alias for ``python -m repro.analysis`` (SEC001-SEC010)
* ``bench``     — run the migration benchmark; ``--profile`` wraps it in
  cProfile and dumps the top functions by cumulative time
* ``fleet``     — fleet control plane: ``plan`` prints a seeded drain plan
  as JSON, ``apply`` executes it end to end (4 machines, 16 enclaves),
  ``status`` shows placements and the plan journal
"""

from __future__ import annotations

import sys


def _run_bench(argv: list[str]) -> int:
    """``python -m repro bench [--reps N] [--seed N] [--profile [TOP]]``."""
    import argparse
    import time

    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("--reps", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--profile", nargs="?", const=25, type=int, default=None, metavar="TOP",
        help="profile under cProfile and print the TOP functions by "
        "cumulative time (default 25)",
    )
    args = parser.parse_args(argv)

    from repro.bench.harness import run_migration_bench

    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        data = run_migration_bench(reps=args.reps, seed=args.seed)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile)
    else:
        start = time.perf_counter()
        data = run_migration_bench(reps=args.reps, seed=args.seed)
        print(f"wall: {time.perf_counter() - start:.3f} s")
    samples = data["enclave_migration"]
    print(
        f"enclave migration: {len(samples)} reps, "
        f"virtual mean {sum(samples) / len(samples):.3f} s"
    )
    return 0


def _run_fleet(argv: list[str]) -> int:
    """``python -m repro fleet plan|apply|status [--seed N] [--intent I]``.

    Builds the seeded demo fleet (4 machines, 16 enclaves, durable MEs)
    and runs the control plane against it: ``plan`` prints the
    :class:`~repro.fleet.model.MigrationPlan` as JSON, ``apply`` executes
    it wave by wave through the batched migration path and verifies every
    enclave's state survived, ``status`` prints placements + journal.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(prog="repro fleet")
    parser.add_argument("action", choices=["plan", "apply", "status"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--intent", default="drain:fleet-0",
        help="drain:<machine>, rebalance, or evacuate:<tenant> "
        "(default drain:fleet-0)",
    )
    parser.add_argument(
        "--dispatch", choices=["serial", "concurrent", "pipelined"],
        default="serial",
        help="wave execution mode: serial groups, per-wave concurrent "
        "replay, or plan-wide pipelined admission (default serial)",
    )
    args = parser.parse_args(argv)

    from repro.fleet.demo import build_demo_fleet, counter_values

    demo = build_demo_fleet(seed=args.seed, dispatch=args.dispatch)
    service = demo.service
    if args.action == "status":
        print(service.status())
        return 0

    intent, _, operand = args.intent.partition(":")
    if intent == "drain":
        plan = service.plan_drain(operand or "fleet-0")
    elif intent == "rebalance":
        plan = service.plan_rebalance()
    elif intent == "evacuate":
        plan = service.plan_evacuate(operand or "tenant-a")
    else:
        parser.error(f"unknown intent {args.intent!r}")
    if args.action == "plan":
        print(json.dumps(plan.to_dict(), indent=2))
        return 0

    before = counter_values(demo)
    result = service.apply(plan)
    after = counter_values(demo)
    print(result.summary())
    if after != before:
        print("STATE DIVERGED after migration")
        return 1
    print(f"state intact: {len(after)} enclaves re-served their counters")
    return 0 if result.completed else 1


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    command = argv[0] if argv else "tables"
    if command == "demo":
        import runpy

        runpy.run_path("examples/quickstart.py", run_name="__main__")
        return 0
    if command == "attacks":
        from repro.bench.figures import attacks

        print(attacks()[0])
        return 0
    if command == "figures":
        from repro.bench.figures import main as figures_main

        return figures_main(["all"] + argv[1:])
    if command == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    if command == "bench":
        return _run_bench(argv[1:])
    if command == "fleet":
        return _run_fleet(argv[1:])
    if command == "tables":
        from repro.bench.figures import table1, table2, tcb

        for fn in (table1, table2, tcb):
            print(fn()[0])
            print()
        return 0
    print(__doc__)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
