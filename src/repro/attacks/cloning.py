"""Cloning-window attack campaigns at fleet scale, and their detection.

Briongos et al. observe that any migration scheme with persistent state has
*cloning windows*: instants where an adversary who controls the untrusted
host can launch a second instance from a snapshot of the sealed library
state — during the RESTORE window (before the legitimate instance's claim
lands), against a stale ME epoch (replaying a cached attested session after
the destination ME was reinstalled), into a batched ``transfer_batch`` wave
(double-joining a staged member), or from a *healed* disk image after
tombstone recovery (the backup restores a pre-freeze blob the freeze flag
never marked).

This module scripts those campaigns as deterministic adversary schedules
over the :mod:`repro.faults` hooks, so they compose with network faults at
exact message positions: a :meth:`~repro.faults.plan.FaultPlan.hook` rule
launches the clone at the ``seq``-th observed message of the victim
migration, optionally while another rule drops an earlier protocol leg and
the retry/resume machinery is mid-recovery.

The defense under test is the epoch/heartbeat clone detection of
:mod:`repro.fleet.registry`:

* guarded libraries (``MigratableApp.clone_guard``) claim a per-instance
  epoch with the fleet's :class:`SingleInstanceRegistry` before operating;
* MEs report freeze hand-offs (``advance``) and monotonic heartbeats, so a
  clone accepted inside the freeze window is fenced *retroactively* when
  the legitimate shipment lands, and an ME restored from an older sealed
  checkpoint fences itself on its first beat;
* a fenced clone is terminated (graceful degradation) while the legitimate
  instance keeps serving; an unreachable registry denies by default.

Every campaign returns a :class:`CloneCampaignReport` carrying the clone's
fate, whether the registry *detected* (recorded an incident) and *fenced*
it, the detection latency in virtual seconds, and the R3/R4 verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.counter_app import MigratableBenchEnclave
from repro.cloud.datacenter import DataCenter
from repro.cloud.network import Endpoint
from repro.core.protocol import (
    LIBRARY_STATE_PATH,
    MigratableApp,
    install_all_migration_enclaves,
    reinstall_migration_enclave,
)
from repro.core.result import MigrationOutcome
from repro.core.retry import RetryPolicy
from repro.errors import (
    CloneDetectedError,
    FencedInstanceError,
    InvalidStateError,
    ReproError,
    TransientError,
)
from repro.faults.injector import FaultInjector, ObservedMessage
from repro.faults.plan import FaultPlan
from repro.fleet.registry import SingleInstanceRegistry
from repro.sgx.identity import SigningKey
from repro import wire

SOURCE = "machine-a"
DESTINATION = "machine-b"
CONTROL = "machine-ctl"

#: Counter targets per deployed app (padded ids, same trick as the chaos
#: batched world): distinct values so a cross-instance mix-up shows as R4.
CLONE_COUNTER_TARGETS = (3, 5)

#: Small retry budget: scenarios where retries cannot help fail fast into
#: the resume path instead of burning sweep wall-clock.
ATTACK_POLICY = RetryPolicy(max_attempts=2, base_delay=0.05)

#: How many times the adversary re-presses a claim that was denied only
#: transiently (deny-by-default while the registry/network was unreachable).
ADVERSARY_RETRIES = 3


@dataclass
class CloneWorld:
    """A data center with guarded apps, registry-attached MEs, and a
    dedicated control machine holding the single-instance registry."""

    dc: DataCenter
    apps: list[MigratableApp]
    counter_ids: list
    me_signer: SigningKey
    dev_key: SigningKey
    registry: SingleInstanceRegistry
    session_resumption: bool = False

    @property
    def app(self) -> MigratableApp:
        return self.apps[0]

    @property
    def counter_id(self):
        return self.counter_ids[0]


@dataclass
class CloneCampaignReport:
    """Outcome of one scripted cloning campaign."""

    campaign: str
    window: str
    fault: str
    clone_outcome: str = "not-attempted"
    detected: bool = False
    fenced: bool = False
    #: Virtual seconds from the clone's first claim attempt to the first
    #: registry incident it caused; negative when never detected.
    detection_latency: float = -1.0
    migrate_outcome: str = ""
    recovery_outcome: str = "not-needed"
    violations: list[str] = field(default_factory=list)
    timeline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ------------------------------------------------------------------ worlds
def build_clone_world(
    seed: int = 2018, *, apps: int = 1, session_resumption: bool = False
) -> CloneWorld:
    """Source + destination machines with durable, registry-attached MEs, a
    control machine owning the :class:`SingleInstanceRegistry`, and
    ``apps`` clone-guarded counter enclaves on the source."""
    dc = DataCenter(name="clone", seed=seed)
    dc.add_machine(SOURCE)
    dc.add_machine(DESTINATION)
    control = dc.add_machine(CONTROL)
    registry = SingleInstanceRegistry(control.storage, dc.clock)
    me_signer = SigningKey.generate(dc.rng.child("clone-me-signer"))
    install_all_migration_enclaves(
        dc,
        me_signer,
        durable=True,
        session_resumption=session_resumption,
        registry=registry,
    )
    dev_key = SigningKey.generate(dc.rng.child("clone-dev"))
    deployed: list[MigratableApp] = []
    counter_ids = []
    for index in range(apps):
        app = MigratableApp.deploy(
            dc,
            dc.machine(SOURCE),
            MigratableBenchEnclave,
            dev_key,
            vm_name=f"clone-vm-{index}",
            app_name=f"clone-app-{index}",
        )
        app.retry_policy = ATTACK_POLICY
        app.registry = registry
        app.clone_guard = True
        enclave = app.start_new()
        # Pad counter ids so each app's tracked id is unique fleet-wide and
        # the invariant check can attribute a surviving instance to its app.
        for _ in range(index):
            enclave.ecall("create_counter")
        counter_id, _ = enclave.ecall("create_counter")
        for _ in range(CLONE_COUNTER_TARGETS[index]):
            enclave.ecall("increment_counter", counter_id)
        deployed.append(app)
        counter_ids.append(counter_id)
    return CloneWorld(
        dc=dc,
        apps=deployed,
        counter_ids=counter_ids,
        me_signer=me_signer,
        dev_key=dev_key,
        registry=registry,
        session_resumption=session_resumption,
    )


def _attach_injector(world: CloneWorld, plan: FaultPlan) -> FaultInjector:
    injector = FaultInjector(
        plan=plan,
        rng=world.dc.rng.child("clone-faults"),
        machines=dict(world.dc.machines),
        meter=world.dc.meter,
    )
    world.dc.network.fault_injector = injector
    return injector


# ------------------------------------------------------------------ probes
def probe_restore_trace(seed: int = 2018) -> list[ObservedMessage]:
    """Message trace of one fault-free *guarded* migration: every request
    leg is a cloning window the restore campaign races."""
    world = build_clone_world(seed)
    injector = _attach_injector(world, FaultPlan())
    result = world.app.migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    world.dc.network.fault_injector = None
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"probe migration did not complete: {result.outcome}")
    return list(injector.trace)


def probe_wave_trace(seed: int = 2018) -> list[ObservedMessage]:
    """Message trace of one fault-free guarded two-member wave."""
    world = build_clone_world(seed, apps=2)
    injector = _attach_injector(world, FaultPlan())
    results = MigratableApp.migrate_group(
        world.apps, world.dc.machine(DESTINATION), migrate_vm=False
    )
    world.dc.network.fault_injector = None
    for result in results:
        if result.outcome is not MigrationOutcome.COMPLETED:
            raise AssertionError(f"probe wave did not complete: {result.outcome}")
    return list(injector.trace)


def probe_stale_session_trace(seed: int = 2018) -> list[ObservedMessage]:
    """Message trace of the second migration in the stale-session world:
    app 0 migrated (warming the source ME's cached attested session), the
    destination ME was reinstalled (fresh epoch), then app 1 migrates."""
    world = build_clone_world(seed, apps=2, session_resumption=True)
    _warm_and_reinstall(world)
    injector = _attach_injector(world, FaultPlan())
    result = world.apps[1].migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    world.dc.network.fault_injector = None
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"probe migration did not complete: {result.outcome}")
    return list(injector.trace)


def _warm_and_reinstall(world: CloneWorld) -> None:
    """Migrate app 0 fault-free, then reinstall the destination ME so the
    source ME's cached session points at a stale ME epoch."""
    result = world.apps[0].migrate(world.dc.machine(DESTINATION), migrate_vm=False)
    if result.outcome is not MigrationOutcome.COMPLETED:
        raise AssertionError(f"warm-up migration failed: {result.outcome}")
    reinstall_migration_enclave(
        world.dc,
        world.dc.machine(DESTINATION),
        world.me_signer,
        durable=True,
        session_resumption=world.session_resumption,
        registry=world.registry,
    )


# ------------------------------------------------------------- clone moves
def _terminate(app, enclave) -> None:
    """Tear the clone down: remove it from its host app and destroy it."""
    if enclave in app.enclaves:
        app.enclaves.remove(enclave)
    app.machine.on_enclave_destroyed(enclave)
    enclave.destroy()


def launch_clone(
    world: CloneWorld, machine, stale_buffer: bytes, label: str
) -> tuple[str, object, object]:
    """One clone-launch attempt from a sealed library snapshot.

    Returns ``(outcome, enclave, host_app)``; the enclave is non-None only
    when the claim was *accepted* (the registry let a second instance in).
    Denials tear the clone down immediately — "fenced and terminated".
    """
    vm = machine.create_vm(f"{label}-vm")
    attack_app = vm.launch_application(label)
    clone = attack_app.launch_enclave(MigratableBenchEnclave, world.dev_key)
    clone.register_ocall(
        "send_to_me",
        lambda addr, p: attack_app.send(str(Endpoint.me(addr)), p),
    )
    clone.register_ocall("save_library_state", lambda blob: None)
    try:
        clone.ecall("migration_init", stale_buffer, "RESTORE", machine.address)
    except (CloneDetectedError, FencedInstanceError) as exc:
        _terminate(attack_app, clone)
        return f"denied:{type(exc).__name__}", None, attack_app
    except InvalidStateError as exc:
        # The freeze flag refused the snapshot before any claim was made.
        _terminate(attack_app, clone)
        return f"refused:{type(exc).__name__}", None, attack_app
    except TransientError as exc:
        # Deny-by-default: the registry/network was unreachable mid-window.
        _terminate(attack_app, clone)
        return f"denied-transient:{type(exc).__name__}", None, attack_app
    except ReproError as exc:
        _terminate(attack_app, clone)
        return f"failed:{type(exc).__name__}", None, attack_app
    return "accepted", clone, attack_app


def _adjudicated(outcome: str) -> bool:
    """True once the registry gave a final answer (accept or hard deny)."""
    return outcome == "accepted" or outcome.startswith("denied:")


class _CloneCampaignState:
    """Shared mutable state between the hook, the press-home retries, and
    the report: the attacker's first-attempt timestamp and latest result."""

    def __init__(self, world: CloneWorld, machine, stale_buffer: bytes, label: str):
        self.world = world
        self.machine = machine
        self.stale_buffer = stale_buffer
        self.label = label
        self.attempts = 0
        self.first_attempt_at: float | None = None
        self.outcome: str | None = None
        self.clone = None
        self.clone_app = None
        self.log: list[str] = []

    def attempt(self) -> None:
        if self.first_attempt_at is None:
            self.first_attempt_at = self.world.dc.clock.now
        outcome, clone, app = launch_clone(
            self.world,
            self.machine,
            self.stale_buffer,
            f"{self.label}-{self.attempts}",
        )
        self.attempts += 1
        self.outcome, self.clone, self.clone_app = outcome, clone, app
        self.log.append(
            f"t={self.world.dc.clock.now:.6f} clone attempt "
            f"{self.attempts}: {outcome}"
        )

    def hook(self, src: str, dst: str, payload: bytes, direction: str):
        """FaultPlan hook body: launch the clone at the matched message,
        then deliver the message unchanged."""
        if self.attempts == 0:
            self.attempt()
        return payload

    def press_home(self) -> None:
        """After the fault window closes, the adversary keeps pressing a
        claim that never reached the registry until it is adjudicated."""
        if self.outcome is None:
            self.attempt()  # the window never opened; attack post-protocol
        retries = 0
        while not _adjudicated(self.outcome) and retries < ADVERSARY_RETRIES:
            if self.outcome.startswith("refused:"):
                break  # freeze flag said no before any claim: terminal
            self.world.dc.clock.advance(0.05)
            self.attempt()
            retries += 1


def _resolve_clone(state: _CloneCampaignState, report: CloneCampaignReport) -> None:
    """Fence-and-terminate resolution: a clone the registry accepted but
    later fenced is destroyed; an accepted, *unfenced* clone is left alive
    so the R3 check convicts the defense."""
    registry = state.world.registry
    if state.clone is None:
        return
    try:
        identity = state.clone.ecall("guard_identity")
    except ReproError:
        identity = b""
    record = registry.record_of(identity) if identity else None
    if record is not None and record.fenced:
        _terminate(state.clone_app, state.clone)
        state.clone = None
        report.timeline.append(
            "fenced clone terminated; legitimate instance keeps serving"
        )
    else:
        report.timeline.append(
            "accepted clone was never fenced — leaving it alive for the "
            "invariant check"
        )


def _score_detection(
    state: _CloneCampaignState,
    report: CloneCampaignReport,
    incidents_before: int,
) -> None:
    registry = state.world.registry
    new_incidents = registry.incidents()[incidents_before:]
    report.detected = bool(new_incidents)
    report.fenced = bool(new_incidents) and state.clone is None
    if new_incidents and state.first_attempt_at is not None:
        report.detection_latency = round(
            new_incidents[0].time - state.first_attempt_at, 6
        )
    report.clone_outcome = state.outcome or "not-attempted"
    report.timeline.extend(state.log)
    if not report.detected:
        report.violations.append(
            "defense: clone attempt left no registry incident"
        )
    elif not report.fenced:
        report.violations.append("defense: detected clone was never fenced")


# --------------------------------------------------------------- invariants
def check_clone_invariants(world: CloneWorld) -> list[str]:
    """R3/R4 per app, ECALL-only, clones included: every alive bench
    enclave anywhere in the data center is probed, and an instance belongs
    to app ``i`` when it serves app ``i``'s tracked counter id but no
    higher tracked id (ids are padded to be strictly increasing)."""
    violations: list[str] = []
    readings: list[dict[int, int]] = []
    for machine in world.dc.machines.values():
        for enclave in machine.enclaves:
            if enclave.enclave_class is not MigratableBenchEnclave:
                continue
            if not enclave.alive:
                continue
            served: dict[int, int] = {}
            for counter_id in world.counter_ids:
                try:
                    served[counter_id] = enclave.ecall("read_counter", counter_id)
                except ReproError:
                    continue
            if served:
                readings.append(served)
    for index, counter_id in enumerate(world.counter_ids):
        target = CLONE_COUNTER_TARGETS[index]
        higher = set(world.counter_ids[index + 1 :])
        serving = [
            served[counter_id]
            for served in readings
            if counter_id in served and not (higher & served.keys())
        ]
        label = f"enclave {index}"
        if len(serving) > 1:
            violations.append(
                f"R3: {len(serving)} operational instances serve {label}"
            )
        if not serving:
            violations.append(f"liveness: no operational instance serves {label}")
        else:
            value = serving[0]
            if value < target:
                violations.append(
                    f"R4: {label} counter regressed to {value} (expected {target})"
                )
            elif value > target:
                violations.append(
                    f"{label} counter advanced to {value} without increments "
                    f"(expected {target})"
                )
    return violations


def _recover(world: CloneWorld, report: CloneCampaignReport) -> None:
    """Drive every interrupted member to completion (bounded resumes)."""
    outcomes: list[str] = []
    for app in world.apps:
        state = "ok"
        for _ in range(3):
            try:
                result = app.resume(migrate_vm=False)
            except ReproError as exc:
                state = f"error:{type(exc).__name__}"
                break
            state = result.outcome.name
            if result.outcome is MigrationOutcome.COMPLETED:
                break
        outcomes.append(state)
    report.recovery_outcome = ",".join(outcomes)


# ---------------------------------------------------------------- campaigns
def _window_plan(
    state: _CloneCampaignState, window_seq: int, fault: str, fault_seq: int
) -> FaultPlan:
    """The campaign's fault plan: optionally drop an earlier protocol leg
    (rules are listed first so the drop is adjudicated before the hook on
    a shared message), then launch the clone at ``window_seq``."""
    plan = FaultPlan()
    if fault == "drop" and fault_seq >= 0:
        plan = plan.drop(nth=fault_seq)
    return plan.hook(state.hook, nth=window_seq)


def run_restore_window_campaign(
    window_seq: int,
    fault: str = "none",
    fault_seq: int = -1,
    seed: int = 2018,
    window_label: str = "",
) -> CloneCampaignReport:
    """Second instance during the RESTORE window: at message ``window_seq``
    of a guarded migration, a clone restores the adversary's pre-migration
    snapshot of the sealed library state on the source machine."""
    report = CloneCampaignReport(
        campaign="restore-window",
        window=window_label or str(window_seq),
        fault=fault,
    )
    world = build_clone_world(seed)
    dc = world.dc
    stale_buffer = world.app.stored_library_buffer()
    state = _CloneCampaignState(
        world, dc.machine(SOURCE), stale_buffer, "restore-clone"
    )
    incidents_before = world.registry.incident_count()
    _attach_injector(world, _window_plan(state, window_seq, fault, fault_seq))
    try:
        result = world.app.migrate(dc.machine(DESTINATION), migrate_vm=False)
        report.migrate_outcome = result.outcome.name
    except ReproError as exc:
        report.migrate_outcome = f"error:{type(exc).__name__}"
    # Keep the injector installed while recovering: occurrence counting
    # continues, so a window later than the fault position opens during the
    # resume pass — the clone races the *recovery*, not just the protocol.
    if report.migrate_outcome != "COMPLETED":
        _recover(world, report)
    dc.network.fault_injector = None
    state.press_home()
    _resolve_clone(state, report)
    _score_detection(state, report, incidents_before)
    report.violations.extend(check_clone_invariants(world))
    return report


def run_wave_double_join_campaign(
    window_seq: int,
    fault: str = "none",
    fault_seq: int = -1,
    seed: int = 2018,
    window_label: str = "",
) -> CloneCampaignReport:
    """Double-join a batched wave: while two members move through one
    staged ``transfer_batch`` exchange, a clone of member 0 (pre-wave
    snapshot) claims RESTORE on the source at message ``window_seq``."""
    report = CloneCampaignReport(
        campaign="wave-double-join",
        window=window_label or str(window_seq),
        fault=fault,
    )
    world = build_clone_world(seed, apps=2)
    dc = world.dc
    stale_buffer = world.apps[0].stored_library_buffer()
    state = _CloneCampaignState(
        world, dc.machine(SOURCE), stale_buffer, "wave-clone"
    )
    incidents_before = world.registry.incident_count()
    _attach_injector(world, _window_plan(state, window_seq, fault, fault_seq))
    try:
        results = MigratableApp.migrate_group(
            world.apps, dc.machine(DESTINATION), migrate_vm=False
        )
        report.migrate_outcome = ",".join(r.outcome.name for r in results)
    except ReproError as exc:
        report.migrate_outcome = f"error:{type(exc).__name__}"
    if report.migrate_outcome != "COMPLETED,COMPLETED":
        _recover(world, report)
    dc.network.fault_injector = None
    state.press_home()
    _resolve_clone(state, report)
    _score_detection(state, report, incidents_before)
    report.violations.extend(check_clone_invariants(world))
    return report


def run_stale_session_replay_campaign(
    window_seq: int,
    fault: str = "none",
    fault_seq: int = -1,
    seed: int = 2018,
    window_label: str = "",
) -> CloneCampaignReport:
    """Replay against a stale ME epoch: the source ME holds a cached
    attested session to the destination ME, the destination ME is
    reinstalled (fresh epoch invalidates the session), and a second
    migration must fall back to full remote attestation — while a clone of
    the already-migrated app 0 claims its old identity on the source."""
    report = CloneCampaignReport(
        campaign="stale-session-replay",
        window=window_label or str(window_seq),
        fault=fault,
    )
    world = build_clone_world(seed, apps=2, session_resumption=True)
    dc = world.dc
    # Adversary snapshot of app 0 before it migrates away.
    stale_buffer = world.apps[0].stored_library_buffer()
    _warm_and_reinstall(world)
    report.timeline.append(
        "app 0 migrated; destination ME reinstalled (cached session is "
        "now bound to a stale ME epoch)"
    )
    state = _CloneCampaignState(
        world, dc.machine(SOURCE), stale_buffer, "replay-clone"
    )
    incidents_before = world.registry.incident_count()
    injector = _attach_injector(
        world, _window_plan(state, window_seq, fault, fault_seq)
    )
    try:
        result = world.apps[1].migrate(dc.machine(DESTINATION), migrate_vm=False)
        report.migrate_outcome = result.outcome.name
    except ReproError as exc:
        report.migrate_outcome = f"error:{type(exc).__name__}"
    if report.migrate_outcome != "COMPLETED":
        _recover(world, report)
    dc.network.fault_injector = None
    state.press_home()
    _resolve_clone(state, report)
    _score_detection(state, report, incidents_before)
    # The stale cached session must NOT have been accepted: the second
    # migration re-runs the full remote-attestation handshake.
    if not any(leg.msg_type == "ra_msg1" for leg in injector.trace):
        report.violations.append(
            "stale cached session accepted by a reinstalled ME (no full-RA "
            "fallback observed)"
        )
    else:
        report.timeline.append(
            "full remote attestation re-ran against the reinstalled ME"
        )
    report.violations.extend(check_clone_invariants(world))
    return report


def run_healed_disk_campaign(
    window: str,
    fault: str = "none",
    seed: int = 2018,
) -> CloneCampaignReport:
    """Relaunch from a healed disk image after tombstone recovery.

    ``window`` selects the artifact the backup restores:

    * ``"tombstone-heal"`` — after a completed migration the source's
      sealed library blob is healed from the archive; the newest copy is
      frozen (freeze-flag refusal), so the adversary replays successively
      older versions until a pre-freeze snapshot initializes — and its
      stale epoch is fenced by the registry.
    * ``"replay-prefreeze"`` — the adversary skips straight to replaying
      the newest *unfrozen* version (same endgame, shorter timeline).
    * ``"me-checkpoint"`` — the *destination ME's* sealed checkpoint is
      rolled back below already-reported heartbeats; the reinstalled ME
      regresses on its first beat and fences itself.
    """
    report = CloneCampaignReport(
        campaign="healed-disk", window=window, fault=fault
    )
    world = build_clone_world(seed)
    dc = world.dc
    source = dc.machine(SOURCE)
    result = world.app.migrate(dc.machine(DESTINATION), migrate_vm=False)
    report.migrate_outcome = result.outcome.name
    if result.outcome is not MigrationOutcome.COMPLETED:
        report.violations.append("setup migration did not complete")
        return report
    incidents_before = world.registry.incident_count()
    plan = FaultPlan().drop(nth=1) if fault == "drop" else FaultPlan()
    _attach_injector(world, plan)
    if window == "me-checkpoint":
        beat_at = _healed_me_checkpoint(world, report)
        dc.network.fault_injector = None
        _score_me_detection(world, report, incidents_before, beat_at)
    else:
        _healed_library_blob(world, source, window, report, incidents_before)
        dc.network.fault_injector = None
    report.violations.extend(check_clone_invariants(world))
    return report


def _library_blob_path(app: MigratableApp) -> str:
    return f"{app.app_name}/{LIBRARY_STATE_PATH}"


def _healed_library_blob(
    world: CloneWorld,
    source,
    window: str,
    report: CloneCampaignReport,
    incidents_before: int,
) -> None:
    """Heal/replay the migrated-away library blob and press clones from
    progressively older versions until the registry adjudicates."""
    dc = world.dc
    path = _library_blob_path(world.app)
    if window == "tombstone-heal":
        source.storage.heal(path + "*")
        report.timeline.append(f"healed {path!r} from the storage archive")
    versions = source.storage.versions(path)
    state = _CloneCampaignState(world, source, b"", "healed-clone")
    for index in range(len(versions) - 1, -1, -1):
        blob = versions[index]
        if blob is None:
            report.timeline.append(f"version {index}: tombstone, skipped")
            continue
        source.storage.replay(path, index)
        state.stale_buffer = source.storage.read(path)
        state.attempt()
        if window == "replay-prefreeze" and state.outcome.startswith("refused:"):
            # This variant goes straight for an unfrozen snapshot.
            continue
        if _adjudicated(state.outcome):
            break
        if state.outcome.startswith("denied-transient"):
            state.press_home()
            if _adjudicated(state.outcome):
                break
    _resolve_clone(state, report)
    _score_detection(state, report, incidents_before)


def _beat_destination(world: CloneWorld) -> dict:
    """One heartbeat against the destination ME over the network (the
    durable path: the ME checkpoints after every handled message)."""
    reply = world.app.app.send(
        str(Endpoint.me(world.dc.machine(DESTINATION).address)),
        wire.encode({"t": "heartbeat"}),
    )
    return wire.decode(reply)


def _healed_me_checkpoint(world: CloneWorld, report: CloneCampaignReport) -> float:
    """Roll the destination ME's sealed checkpoint back below heartbeats
    the registry has already seen, then power-cycle and reinstall."""
    dc = world.dc
    destination = dc.machine(DESTINATION)
    ckpt_paths = [
        p for p in destination.storage.paths() if "me_checkpoint" in p
    ]
    baseline = {p: len(destination.storage.versions(p)) for p in ckpt_paths}
    for _ in range(3):
        for _attempt in range(3):
            try:
                reply = _beat_destination(world)
            except ReproError as exc:
                # A lost beat (or reply) is retried — heartbeats are
                # idempotent from the operator's side, and a re-delivered
                # beat only advances the monotonic counter further.
                report.timeline.append(
                    f"heartbeat lost in transit ({type(exc).__name__}); retrying"
                )
                world.dc.clock.advance(0.05)
                continue
            if reply.get("status") != "ok":
                report.timeline.append(f"heartbeat rejected: {reply}")
            break
    report.timeline.append(
        "3 heartbeats reported and persisted in the v4 checkpoint"
    )
    destination.crash()
    for path, count in baseline.items():
        if count and len(destination.storage.versions(path)) > count:
            destination.storage.replay(path, count - 1)
    report.timeline.append(
        "machine crashed; ME checkpoint blobs replayed to the pre-beat image"
    )
    host = reinstall_migration_enclave(
        dc,
        destination,
        world.me_signer,
        durable=True,
        session_resumption=world.session_resumption,
        registry=world.registry,
    )
    # The app enclave died with the machine; its guarded relaunch is the
    # legitimate takeover (dead holder, fresh epoch claim).
    try:
        world.app.restart()
        report.recovery_outcome = "restarted"
    except ReproError as exc:
        report.recovery_outcome = f"error:{type(exc).__name__}"
    # First beat from the rolled-back ME: direct ECALL, so the regression
    # surfaces as a typed CloneDetectedError to the operator.
    beat_at = dc.clock.now
    try:
        beat = host.enclave.ecall("heartbeat")
        report.timeline.append(
            f"rolled-back ME heartbeat ACCEPTED at {beat['heartbeat']} "
            "(should have regressed)"
        )
        report.clone_outcome = "accepted"
    except CloneDetectedError as exc:
        report.clone_outcome = "denied:CloneDetectedError"
        report.timeline.append(f"rolled-back ME fenced on first beat: {exc}")
    except FencedInstanceError as exc:
        report.clone_outcome = "denied:FencedInstanceError"
        report.timeline.append(f"rolled-back ME already fenced: {exc}")
    except TransientError:
        report.clone_outcome = "denied-transient:TransientError"
    return beat_at


def _score_me_detection(
    world: CloneWorld,
    report: CloneCampaignReport,
    incidents_before: int,
    beat_at: float,
) -> None:
    new_incidents = world.registry.incidents()[incidents_before:]
    report.detected = bool(new_incidents)
    report.fenced = report.detected and report.clone_outcome.startswith("denied:")
    if new_incidents:
        report.detection_latency = round(new_incidents[0].time - beat_at, 6)
    if not report.detected:
        report.violations.append(
            "defense: rolled-back ME checkpoint left no registry incident"
        )
    elif not report.fenced:
        report.violations.append("defense: regressed ME was never fenced")
