"""The roll-back attack of Section III-C, executed end to end.

The victim keeps its state portable — encrypted under a KDC (KMS-style) key
and stored in shared storage — so after migration it can still read its
state.  But the monotonic counters protecting *freshness* are machine-local:

1. **Start-stop-restart** — first persist on the source creates counter
   c = 1 and seals state version v = 1.  The adversary keeps that blob.
2. **Continue** — the enclave keeps working on the source, persisting
   v = 2, 3, ... under counter c.
3. **Migrate** — the VM (with Gu-style data-memory migration) moves to the
   destination machine.
4. **Terminate** — the enclave persists on the destination; since no
   counter exists there yet it creates a fresh one: c' = 1.
5. **Restart** — the adversary feeds the enclave the *step-1* blob
   (v = 1).  The check v == c' passes and the state rolls back.

The rolled-back TrInX instance then re-issues trusted-counter values it has
already used — equivocation that breaks Hybster's safety, which the
:class:`~repro.apps.trinx.CertificateAuditor` detects.

With the Migration Library (``run_rollback_attack_defended``), the counter's
*effective value* migrates, so the stale blob's version can never match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.trinx import (
    CertificateAuditor,
    CertificationViolation,
    TrInXSecure,
    TrInXVulnerable,
)
from repro.cloud.datacenter import DataCenter
from repro.cloud.kdc import KeyDistributionCenter, shared_storage
from repro.core.baseline import GuFlagMode, register_gu_transport
from repro.core.protocol import MigratableApp, install_all_migration_enclaves
from repro.errors import InvalidStateError, MigrationError, SgxError
from repro.sgx.identity import SigningKey


@dataclass
class RollbackAttackResult:
    """Outcome of one roll-back attack run."""

    defense: str
    rollback_achieved: bool
    equivocation_detected: bool
    blocked_reason: str = ""
    timeline: list[str] = field(default_factory=list)

    @property
    def attack_succeeded(self) -> bool:
        return self.rollback_achieved


def _launch_vulnerable(app, signing_key, dc, machine, kdc):
    enclave = app.launch_enclave(TrInXVulnerable, signing_key)
    endpoint = register_gu_transport(enclave, app)
    enclave.register_ocall("kdc_request_key", kdc.request_key)
    enclave.ecall(
        "gu_init",
        GuFlagMode.MEMORY.name,
        None,
        dc.ias_verify_for(machine),
        dc.ias.report_public_key,
    )
    enclave.ecall("trinx_init")
    return enclave, endpoint


def run_rollback_attack_vulnerable(seed: int = 77) -> RollbackAttackResult:
    """KDC-portable state + machine-local counters: the attack succeeds."""
    result = RollbackAttackResult(
        defense="kdc-plus-local-counters", rollback_achieved=False,
        equivocation_detected=False,
    )
    log = result.timeline.append

    dc = DataCenter(name="rollback-dc", seed=seed)
    source = dc.add_machine("machine-a")
    destination = dc.add_machine("machine-b")
    kdc = KeyDistributionCenter(dc.ias, dc.rng.child("kdc"), dc.meter)
    s3 = shared_storage()
    signing_key = SigningKey.generate(dc.rng.child("trinx-dev"))

    # --- Step 1: start-stop-restart on the source --------------------------
    vm = source.create_vm("trinx-vm")
    app = vm.launch_application("trinx")
    enclave, _ = _launch_vulnerable(app, signing_key, dc, source, kdc)
    enclave.ecall("create_counter", "r1")
    cert1 = enclave.ecall("certify", "r1", b"prepare:block-1")
    auditor = CertificateAuditor(_identity_key_of(kdc, enclave))
    auditor.verify(cert1)
    blob_v1 = enclave.ecall("persist")  # creates counter, c = v = 1
    s3.write("trinx/state", blob_v1)
    counter_uuid = enclave.ecall("counter_uuid_bytes")
    log("step1: certified r1=1, persisted v=1 under fresh counter c=1")
    app.terminate()
    app.restart()
    enclave, _ = _launch_vulnerable(app, signing_key, dc, source, kdc)
    enclave.ecall("adopt_counter", counter_uuid)
    enclave.ecall("restore", s3.read("trinx/state"))
    log("step1: restart on source accepted v=1")

    # --- Step 2: continue on the source ------------------------------------
    cert2 = enclave.ecall("certify", "r1", b"prepare:block-2")
    auditor.verify(cert2)
    cert3 = enclave.ecall("certify", "r1", b"prepare:block-3")
    auditor.verify(cert3)
    s3.write("trinx/state", enclave.ecall("persist"))  # v = 2
    s3.write("trinx/state", enclave.ecall("persist"))  # v = 3
    log("step2: certified r1=2,3 on source; persisted v=2,3")

    # --- Step 3: migrate to the destination --------------------------------
    dest_vm = destination.create_vm("trinx-vm-dst")
    dest_app = dest_vm.launch_application("trinx")
    dest_enclave, dest_endpoint = _launch_vulnerable(
        dest_app, signing_key, dc, destination, kdc
    )
    enclave.ecall("gu_start_migration", dest_endpoint)
    log("step3: data memory migrated to machine-b")

    # --- Step 4: terminate on the destination ------------------------------
    blob_dest_v1 = dest_enclave.ecall("persist")  # no counter here: c' = 1
    s3.write("trinx/state", blob_dest_v1)
    dest_counter_uuid = dest_enclave.ecall("counter_uuid_bytes")
    log("step4: destination persisted under a FRESH counter c'=1")
    dest_app.terminate()

    # --- Step 5: restart on the destination with the step-1 blob -----------
    dest_app.restart()
    replayed, _ = _launch_vulnerable(dest_app, signing_key, dc, destination, kdc)
    replayed.ecall("adopt_counter", dest_counter_uuid)
    try:
        replayed.ecall("restore", blob_v1)  # v = 1 == c' = 1 -> accepted!
        result.rollback_achieved = True
        log("step5: ROLLBACK ACCEPTED — state reverted to v=1 (r1=1)")
        # The rolled-back instance re-issues counter value 2 for a
        # different message: equivocation.
        conflicting = replayed.ecall("certify", "r1", b"prepare:block-2-EVIL")
        try:
            auditor.verify(conflicting)
        except CertificationViolation as exc:
            result.equivocation_detected = True
            log(f"auditor: {exc}")
    except (InvalidStateError, MigrationError, SgxError) as exc:
        result.blocked_reason = str(exc)
        log(f"step5: rollback BLOCKED — {exc}")
    return result


def _identity_key_of(kdc, enclave) -> bytes:
    """Reconstruct the TrInX identity key for the auditor (test observer).

    In a deployment the replicas learn this key via attestation; here we
    recompute it the same way the enclave does.
    """
    import hashlib

    # Test-observer shortcut, not adversary capability: the auditor plays a
    # replica that would learn this key via remote attestation + KDC; we
    # recompute it through the enclave handle instead of simulating that
    # whole exchange.  The attack itself never touches enclave memory.
    quote = enclave.trusted.sdk.get_quote(b"trinx-kdc", basename=b"kdc")  # repro: ignore[SEC002]
    kdc_key = kdc.request_key(quote.to_bytes())
    return hashlib.sha256(b"trinx-identity|" + kdc_key).digest()


def run_rollback_attack_defended(seed: int = 77) -> RollbackAttackResult:
    """The same adversary schedule against the Migration Library."""
    result = RollbackAttackResult(
        defense="migration-library", rollback_achieved=False,
        equivocation_detected=False,
    )
    log = result.timeline.append

    dc = DataCenter(name="rollback-dc-defended", seed=seed)
    source = dc.add_machine("machine-a")
    destination = dc.add_machine("machine-b")
    install_all_migration_enclaves(dc)
    s3 = shared_storage()
    signing_key = SigningKey.generate(dc.rng.child("trinx-dev"))

    mapp = MigratableApp.deploy(dc, source, TrInXSecure, signing_key, vm_name="trinx-vm")
    enclave = mapp.start_new()
    enclave.ecall("trinx_init")
    enclave.ecall("create_counter", "r1")
    enclave.ecall("certify", "r1", b"prepare:block-1")
    blob_v1 = enclave.ecall("persist")  # migratable counter -> v = 1
    s3.write("trinx/state", blob_v1)
    log("step1: persisted v=1 under migratable counter")

    enclave.ecall("certify", "r1", b"prepare:block-2")
    enclave.ecall("certify", "r1", b"prepare:block-3")
    s3.write("trinx/state", enclave.ecall("persist"))  # v = 2
    s3.write("trinx/state", enclave.ecall("persist"))  # v = 3
    log("step2: persisted v=2,3 on source")

    dest_enclave = mapp.migrate(destination, migrate_vm=False)
    log("step3: migrated via Migration Enclaves (counter offset shipped)")

    # The legitimate restart path works: the latest state (v=3) matches the
    # migrated effective counter value exactly.
    dest_enclave.ecall("restore", s3.read("trinx/state"))
    log("step4: destination restored the LATEST state (v=3 == effective 3)")

    # Step 4/5: on the destination the effective counter CONTINUES at 3, so
    # a fresh persist yields v=4 and the stale blob can never match.
    s3.write("trinx/state", dest_enclave.ecall("persist"))  # v = 4
    try:
        dest_enclave.ecall("restore", blob_v1)
        result.rollback_achieved = True
        log("step5: ROLLBACK ACCEPTED (should not happen)")
    except (InvalidStateError, MigrationError, SgxError) as exc:
        result.blocked_reason = str(exc)
        log(f"step5: rollback BLOCKED — {exc}")
    return result
