"""The fork attack of Section III-B, executed end to end.

The adversary creates two concurrently live copies of a Teechan enclave with
inconsistent state:

1. **Start-stop-restart** — start the enclave on the source machine, signal
   termination so it persists its state under a fresh monotonic counter
   (c = v = 1), then restart it from that state.
2. **Migrate** — move the enclave (Gu-style data-memory migration) to the
   destination machine and continue making payments there.
3. **Terminate-restart** — restart the source application from the step-1
   persistent state.  Because the counter on the source machine still reads
   1, the stale state is accepted and a second live copy exists.

Both copies can now pay from the same channel balance — a double spend the
counterparty detects as two conflicting payments with one sequence number.

The scenario is parameterised over the Gu freeze-flag handling (Section
III-B's analysis) and over the paper's defence:

* ``GuFlagMode.NONE`` / ``MEMORY``  → attack **succeeds**;
* ``GuFlagMode.PERSISTED``          → attack blocked, but the enclave can
  never migrate back to the source machine;
* the Migration Library (``defended=True``) → attack blocked *and*
  migrate-back works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.teechan import (
    ChannelCounterparty,
    ChannelViolation,
    TeechanSecure,
    TeechanVulnerable,
)
from repro.cloud.datacenter import DataCenter
from repro.cloud.network import Endpoint
from repro.core.baseline import GuFlagMode, register_gu_transport
from repro.core.protocol import MigratableApp, install_all_migration_enclaves
from repro.errors import InvalidStateError, MigrationError, SgxError
from repro.sgx.identity import SigningKey

CHANNEL_KEY = b"teechan-demo-channel-key-32bytes"
INITIAL_BALANCE = 100


@dataclass
class ForkAttackResult:
    """Outcome of one fork-attack run."""

    defense: str
    fork_achieved: bool
    double_spend_detected: bool
    blocked_reason: str = ""
    migrate_back_possible: bool | None = None
    timeline: list[str] = field(default_factory=list)

    @property
    def attack_succeeded(self) -> bool:
        return self.fork_achieved


def _launch_vulnerable(app, signing_key, flag_mode, dc, machine):
    """Load a TeechanVulnerable enclave with Gu support wired up."""
    enclave = app.launch_enclave(TeechanVulnerable, signing_key)
    endpoint = register_gu_transport(enclave, app)
    flag_blob = app.load("gu_flag") if app.has_stored("gu_flag") else None
    enclave.ecall(
        "gu_init",
        flag_mode.name,
        flag_blob,
        dc.ias_verify_for(machine),
        dc.ias.report_public_key,
    )
    return enclave, endpoint


def run_fork_attack_vulnerable(
    flag_mode: GuFlagMode = GuFlagMode.MEMORY, seed: int = 2024
) -> ForkAttackResult:
    """Run the attack against Gu-style migration without persistent state."""
    result = ForkAttackResult(defense=f"gu-{flag_mode.name.lower()}", fork_achieved=False,
                              double_spend_detected=False)
    log = result.timeline.append

    dc = DataCenter(name="fork-dc", seed=seed)
    source = dc.add_machine("machine-a")
    destination = dc.add_machine("machine-b")
    signing_key = SigningKey.generate(dc.rng.child("teechan-dev"))
    counterparty = ChannelCounterparty(CHANNEL_KEY)

    # --- Step 1: start-stop-restart on the source --------------------------
    vm = source.create_vm("teechan-vm")
    app = vm.launch_application("teechan")
    enclave, _ = _launch_vulnerable(app, signing_key, flag_mode, dc, source)
    enclave.ecall("open_channel", CHANNEL_KEY, INITIAL_BALANCE, 0)
    sealed_v1 = enclave.ecall("persist")  # requests counter, c = v = 1
    app.store("state", sealed_v1)
    log("step1: enclave started on machine-a, state persisted with c=v=1")
    app.terminate()
    app.restart()
    enclave, source_endpoint = _launch_vulnerable(app, signing_key, flag_mode, dc, source)
    enclave.ecall("restore", source.storage.read("teechan/state"))
    log("step1: restart on machine-a accepted, state restored")

    # --- Step 2: migrate (Gu data-memory migration) and continue -----------
    dest_vm = destination.create_vm("teechan-vm-dst")
    dest_app = dest_vm.launch_application("teechan")
    dest_enclave, dest_endpoint = _launch_vulnerable(
        dest_app, signing_key, flag_mode, dc, destination
    )
    enclave.ecall("gu_start_migration", dest_endpoint)
    log("step2: data memory migrated to machine-b via Gu-style mechanism")
    payment = dest_enclave.ecall("pay", 30)
    counterparty.accept(payment)
    dest_app.store("state", dest_enclave.ecall("persist"))  # new counter c'
    log("step2: destination paid 30 and persisted (v=2 under new counter c')")

    # --- Step 3: terminate-restart the source from the step-1 state --------
    app.terminate()
    app.restart()
    try:
        forked, _ = _launch_vulnerable(app, signing_key, flag_mode, dc, source)
        forked.ecall("restore", sealed_v1)  # c = v = 1 still holds on A
        fork_payment = forked.ecall("pay", 45)  # conflicts with the seq-1 payment of 30
        result.fork_achieved = True
        log("step3: SOURCE RESTARTED from stale state — two live copies exist")
        try:
            counterparty.accept(fork_payment)
        except ChannelViolation as exc:
            result.double_spend_detected = True
            log(f"counterparty: {exc}")
    except (InvalidStateError, MigrationError, SgxError) as exc:
        result.blocked_reason = str(exc)
        log(f"step3: fork BLOCKED — {exc}")

    # --- Check the migrate-back constraint (paper's persisted-flag critique)
    if flag_mode is GuFlagMode.PERSISTED:
        try:
            # A legitimate migration back to the source: the destination
            # exports to a fresh instance on machine-a, which must first
            # initialise with the persisted flag — and refuses.
            back_app = source.create_vm("teechan-vm-back").launch_application("teechan")
            back_enclave, back_endpoint = _launch_vulnerable(
                back_app, signing_key, flag_mode, dc, source
            )
            # the flag blob was stored under the original app's namespace;
            # model the guest reusing its disk image:
            if app.has_stored("gu_flag"):
                back_enclave2 = back_app.launch_enclave(TeechanVulnerable, signing_key)
                register_gu_transport(back_enclave2, back_app, "gu-back")
                back_enclave2.ecall(
                    "gu_init",
                    flag_mode.name,
                    app.load("gu_flag"),
                    dc.ias_verify_for(source),
                    dc.ias.report_public_key,
                )
                result.migrate_back_possible = not back_enclave2.ecall("gu_is_frozen")
            else:
                result.migrate_back_possible = True
        except (InvalidStateError, MigrationError) as exc:
            result.migrate_back_possible = False
            log(f"migrate-back blocked: {exc}")
        if result.migrate_back_possible is False:
            log("persisted flag prevents the enclave from EVER returning to machine-a")
    return result


def run_fork_attack_defended(seed: int = 2024) -> ForkAttackResult:
    """Run the same adversary schedule against the paper's defence."""
    result = ForkAttackResult(defense="migration-library", fork_achieved=False,
                              double_spend_detected=False)
    log = result.timeline.append

    dc = DataCenter(name="fork-dc-defended", seed=seed)
    source = dc.add_machine("machine-a")
    destination = dc.add_machine("machine-b")
    install_all_migration_enclaves(dc)
    signing_key = SigningKey.generate(dc.rng.child("teechan-dev"))
    counterparty = ChannelCounterparty(CHANNEL_KEY)

    mapp = MigratableApp.deploy(dc, source, TeechanSecure, signing_key, vm_name="teechan-vm")
    enclave = mapp.start_new()
    enclave.ecall("open_channel", CHANNEL_KEY, INITIAL_BALANCE, 0)
    sealed_v1 = enclave.ecall("persist")
    mapp.app.store("state", sealed_v1)
    stale_library_buffer = mapp.stored_library_buffer()  # adversary snapshot
    log("step1: enclave started on machine-a, state persisted (v=1)")

    enclave = mapp.restart()
    enclave.ecall("open_channel", CHANNEL_KEY, INITIAL_BALANCE, 0)
    enclave.ecall("restore", source.storage.read("app/state"))
    log("step1: restart on machine-a accepted")

    dest_enclave = mapp.migrate(destination, migrate_vm=False)
    dest_enclave.ecall("open_channel", CHANNEL_KEY, INITIAL_BALANCE, 0)
    dest_enclave.ecall("restore", destination.storage.read("app/state") if
                       destination.storage.exists("app/state") else source.storage.read("app/state"))
    counterparty.accept(dest_enclave.ecall("pay", 30))
    mapp.app.store("state", dest_enclave.ecall("persist"))
    log("step2: migrated to machine-b via Migration Enclaves; paid 30")

    # Step 3: adversary restarts on the source with the stale library buffer
    attack_vm = source.create_vm("attacker-vm")
    attack_app = attack_vm.launch_application("attacker")
    forked = attack_app.launch_enclave(TeechanSecure, signing_key)
    forked.register_ocall(
        "send_to_me", lambda addr, p: attack_app.send(str(Endpoint.me(addr)), p)
    )
    forked.register_ocall("save_library_state", lambda blob: None)
    try:
        forked.ecall("migration_init", stale_library_buffer, "RESTORE", source.address)
        forked.ecall("open_channel", CHANNEL_KEY, INITIAL_BALANCE, 0)
        forked.ecall("restore", sealed_v1)
        payment = forked.ecall("pay", 45)  # conflicts with the seq-1 payment of 30
        result.fork_achieved = True
        log("step3: FORK SUCCEEDED (should not happen)")
        try:
            counterparty.accept(payment)
        except ChannelViolation:
            result.double_spend_detected = True
    except (InvalidStateError, MigrationError, SgxError) as exc:
        result.blocked_reason = str(exc)
        log(f"step3: fork BLOCKED — {exc}")

    # Migrate-back works with the defence (unlike the persisted Gu flag).
    try:
        back = mapp.migrate(source, migrate_vm=False)
        result.migrate_back_possible = back.alive
        log("migrate-back to machine-a succeeded")
    except MigrationError as exc:
        result.migrate_back_possible = False
        log(f"migrate-back failed: {exc}")
    return result
