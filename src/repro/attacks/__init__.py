"""End-to-end reproductions of the paper's Section III attacks."""

from repro.attacks.fork import (
    ForkAttackResult,
    run_fork_attack_defended,
    run_fork_attack_vulnerable,
)
from repro.attacks.rollback import (
    RollbackAttackResult,
    run_rollback_attack_defended,
    run_rollback_attack_vulnerable,
)

__all__ = [
    "ForkAttackResult",
    "run_fork_attack_defended",
    "run_fork_attack_vulnerable",
    "RollbackAttackResult",
    "run_rollback_attack_defended",
    "run_rollback_attack_vulnerable",
]
