"""End-to-end reproductions of the paper's Section III attacks."""

from repro.attacks.cloning import (
    CloneCampaignReport,
    CloneWorld,
    build_clone_world,
    check_clone_invariants,
    launch_clone,
    probe_restore_trace,
    probe_stale_session_trace,
    probe_wave_trace,
    run_healed_disk_campaign,
    run_restore_window_campaign,
    run_stale_session_replay_campaign,
    run_wave_double_join_campaign,
)
from repro.attacks.fork import (
    ForkAttackResult,
    run_fork_attack_defended,
    run_fork_attack_vulnerable,
)
from repro.attacks.rollback import (
    RollbackAttackResult,
    run_rollback_attack_defended,
    run_rollback_attack_vulnerable,
)

__all__ = [
    "CloneCampaignReport",
    "CloneWorld",
    "ForkAttackResult",
    "RollbackAttackResult",
    "build_clone_world",
    "check_clone_invariants",
    "launch_clone",
    "probe_restore_trace",
    "probe_stale_session_trace",
    "probe_wave_trace",
    "run_fork_attack_defended",
    "run_fork_attack_vulnerable",
    "run_healed_disk_campaign",
    "run_restore_window_campaign",
    "run_rollback_attack_defended",
    "run_rollback_attack_vulnerable",
    "run_stale_session_replay_campaign",
    "run_wave_double_join_campaign",
]
