"""A small explicit TLV wire format for protocol messages.

Everything that crosses an untrusted boundary in the simulator — sealed
blobs, attestation messages, migration data — is serialized through this
module rather than pickled, so the byte layout is explicit, versioned, and
cannot smuggle Python objects.

A message is a mapping from string keys to values of type ``bytes``, ``int``,
``str``, ``bool``, or a (possibly nested) list of those.  Encoding:

    message   := MAGIC u16(count) field*
    field     := u16(len(key)) key u8(type) payload
    int       := u64 (two's complement is not needed; values are unsigned
                 with an explicit sign byte)
"""

from __future__ import annotations

from repro.errors import WireError

_MAGIC = b"RPR1"

_T_BYTES = 0
_T_INT = 1
_T_STR = 2
_T_BOOL = 3
_T_LIST = 4

Value = bytes | int | str | bool | list


def _encode_value(value: Value) -> bytes:
    if isinstance(value, bool):  # must precede int check
        return bytes([_T_BOOL, 1 if value else 0])
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        return bytes([_T_BYTES]) + len(data).to_bytes(4, "big") + data
    if isinstance(value, int):
        sign = 1 if value < 0 else 0
        return bytes([_T_INT, sign]) + abs(value).to_bytes(8, "big")
    if isinstance(value, str):
        data = value.encode("utf-8")
        return bytes([_T_STR]) + len(data).to_bytes(4, "big") + data
    if isinstance(value, list):
        parts = [bytes([_T_LIST]), len(value).to_bytes(4, "big")]
        for item in value:
            parts.append(_encode_value(item))
        return b"".join(parts)
    raise WireError(f"unsupported wire type: {type(value).__name__}")


def _decode_value(data: bytes, offset: int) -> tuple[Value, int]:
    if offset >= len(data):
        raise WireError("truncated value")
    vtype = data[offset]
    offset += 1
    if vtype == _T_BOOL:
        if offset >= len(data):
            raise WireError("truncated bool")
        return data[offset] != 0, offset + 1
    if vtype == _T_INT:
        if offset + 9 > len(data):
            raise WireError("truncated int")
        sign = data[offset]
        magnitude = int.from_bytes(data[offset + 1 : offset + 9], "big")
        return (-magnitude if sign else magnitude), offset + 9
    if vtype in (_T_BYTES, _T_STR):
        if offset + 4 > len(data):
            raise WireError("truncated length")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if offset + length > len(data):
            raise WireError("truncated payload")
        payload = data[offset : offset + length]
        offset += length
        if vtype == _T_STR:
            try:
                return payload.decode("utf-8"), offset
            except UnicodeDecodeError as exc:
                raise WireError(f"invalid utf-8 in string value: {exc}") from exc
        return payload, offset
    if vtype == _T_LIST:
        if offset + 4 > len(data):
            raise WireError("truncated list length")
        count = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return items, offset
    raise WireError(f"unknown wire type code: {vtype}")


def encode(message: dict[str, Value]) -> bytes:
    """Serialize a message dict to bytes (keys sorted for determinism)."""
    parts = [_MAGIC, len(message).to_bytes(2, "big")]
    for key in sorted(message):
        key_bytes = key.encode("utf-8")
        parts.append(len(key_bytes).to_bytes(2, "big"))
        parts.append(key_bytes)
        parts.append(_encode_value(message[key]))
    return b"".join(parts)


def pack_records(rows: list[dict[str, Value]]) -> list[bytes]:
    """Frame a batch of record dicts as a list of encoded sub-messages.

    Used for batch exchanges (e.g. the Migration Enclaves' ``transfer_batch``
    command): each record is one self-delimiting encoded message, so the
    batch travels as a single wire list while every record stays individually
    parseable and versionable.
    """
    return [encode(row) for row in rows]


def unpack_records(items: list) -> list[dict[str, Value]]:
    """Inverse of :func:`pack_records`.

    Raises :class:`WireError` when an item is not an encoded sub-message, so
    callers get the same failure mode for a malformed batch as for a
    malformed top-level message.
    """
    rows: list[dict[str, Value]] = []
    for item in items:
        if not isinstance(item, (bytes, bytearray)):
            raise WireError("batch record is not an encoded message")
        rows.append(decode(bytes(item)))
    return rows


def decode(data: bytes) -> dict[str, Value]:
    """Parse bytes produced by :func:`encode`."""
    if len(data) < 6 or data[:4] != _MAGIC:
        raise WireError("bad magic")
    count = int.from_bytes(data[4:6], "big")
    offset = 6
    message: dict[str, Value] = {}
    for _ in range(count):
        if offset + 2 > len(data):
            raise WireError("truncated key length")
        key_len = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        if offset + key_len > len(data):
            raise WireError("truncated key")
        try:
            key = data[offset : offset + key_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid utf-8 in key: {exc}") from exc
        offset += key_len
        value, offset = _decode_value(data, offset)
        message[key] = value
    if offset != len(data):
        raise WireError("trailing bytes after message")
    return message
