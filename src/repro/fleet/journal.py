"""Durable persistence of fleet plans (the control plane's crash safety).

The fleet journal lives on one designated *control machine*'s untrusted
storage and records the whole plan plus a tiny progress cursor:

* ``next_wave`` — first wave not yet marked done;
* ``wave_started`` — whether that wave's dispatch began (so a resuming
  planner knows it must *reconcile* the wave member-by-member instead of
  blindly re-dispatching — re-dispatching a completed member would try to
  migrate an enclave that already left).

Updates use the same write-temp -> fsync -> atomic-rename discipline as the
per-app :class:`~repro.cloud.storage.MigrationJournal` (PR-5 durable-storage
primitives), so at every instant the journal path holds either the complete
previous record or the complete new one, and the generation counter makes a
resurrected stale record (a lying fsync) detectable.

Like the per-app journal, this record is a recovery *hint*: losing it stalls
fleet resumption (the operator re-plans), but R3/R4 never depend on it —
every member's own migration journal and the trusted layers carry the
correctness argument.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import wire
from repro.cloud.storage import UntrustedStorage
from repro.fleet.model import PlannedMove, MigrationPlan, Wave

FLEET_PLAN_PATH = "fleet_plan"


@dataclass(frozen=True)
class FleetPlanRecord:
    """The persisted plan + progress cursor."""

    intent: str
    waves: tuple[tuple[PlannedMove, ...], ...]
    next_wave: int = 0
    wave_started: bool = False
    generation: int = 0

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "v": 1,
                "intent": self.intent,
                "waves": [
                    wire.pack_records([move.to_dict() for move in wave])
                    for wave in self.waves
                ],
                "next_wave": self.next_wave,
                "wave_started": self.wave_started,
                "gen": self.generation,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FleetPlanRecord":
        fields = wire.decode(data)
        return cls(
            intent=fields["intent"],
            waves=tuple(
                tuple(
                    PlannedMove.from_dict(row)
                    for row in wire.unpack_records(wave)
                )
                for wave in fields["waves"]
            ),
            next_wave=fields["next_wave"],
            wave_started=fields["wave_started"],
            generation=fields.get("gen", 0),
        )

    @classmethod
    def from_plan(cls, plan: MigrationPlan) -> "FleetPlanRecord":
        return cls(
            intent=plan.intent,
            waves=tuple(wave.moves for wave in plan.waves),
        )

    def plan_waves(self) -> tuple[Wave, ...]:
        return tuple(
            Wave(index=index, moves=moves)
            for index, moves in enumerate(self.waves)
        )


@dataclass
class FleetPlanJournal:
    """The fleet plan record on the control machine's disk."""

    storage: UntrustedStorage
    owner: str = "fleet"

    @property
    def path(self) -> str:
        return f"{self.owner}/{FLEET_PLAN_PATH}"

    @property
    def _tmp_path(self) -> str:
        return f"{self.path}.tmp"

    def write(self, record: FleetPlanRecord) -> None:
        current = self.read()
        record = replace(
            record, generation=(current.generation if current else 0) + 1
        )
        self.storage.write(self._tmp_path, record.to_bytes())
        self.storage.sync(self._tmp_path)
        self.storage.rename(self._tmp_path, self.path)

    def write_plan(self, plan: MigrationPlan) -> None:
        """Persist a fresh plan with the cursor at wave 0, not started."""
        self.write(FleetPlanRecord.from_plan(plan))

    def mark_wave_started(self, index: int) -> None:
        record = self._require()
        self.write(replace(record, next_wave=index, wave_started=True))

    def mark_wave_done(self, index: int) -> None:
        record = self._require()
        self.write(replace(record, next_wave=index + 1, wave_started=False))

    def read(self) -> FleetPlanRecord | None:
        if not self.storage.exists(self.path):
            return None
        try:
            return FleetPlanRecord.from_bytes(self.storage.read(self.path))
        except (wire.WireError, KeyError):
            # Corrupted plan journal == no plan journal: resumption stalls
            # (the operator re-plans) but nothing unsafe can happen — every
            # member still has its own migration journal.
            self.storage.journal_corruption_count += 1
            return None

    def _require(self) -> FleetPlanRecord:
        record = self.read()
        if record is None:
            raise AssertionError("no fleet plan journaled")
        return record

    def clear(self) -> None:
        self.storage.delete(self._tmp_path)
        self.storage.delete(self.path)
        self.storage.sync(self._tmp_path)
        self.storage.sync(self.path)
