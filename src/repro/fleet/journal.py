"""Durable persistence of fleet plans (the control plane's crash safety).

The fleet journal lives on one designated *control machine*'s untrusted
storage and records the whole plan plus a tiny progress cursor:

* ``next_wave`` — first wave not yet marked done;
* ``wave_started`` — whether that wave's dispatch began (so a resuming
  planner knows it must *reconcile* the wave member-by-member instead of
  blindly re-dispatching — re-dispatching a completed member would try to
  migrate an enclave that already left).

Updates use the same write-temp -> fsync -> atomic-rename discipline as the
per-app :class:`~repro.cloud.storage.MigrationJournal` (PR-5 durable-storage
primitives), so at every instant the journal path holds either the complete
previous record or the complete new one, and the generation counter makes a
resurrected stale record (a lying fsync) detectable.

Like the per-app journal, this record is a recovery *hint*: losing it stalls
fleet resumption (the operator re-plans), but R3/R4 never depend on it —
every member's own migration journal and the trusted layers carry the
correctness argument.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import wire
from repro.cloud.storage import UntrustedStorage
from repro.fleet.model import PlannedMove, MigrationPlan, Wave

FLEET_PLAN_PATH = "fleet_plan"
FLEET_PLAN_INDEX_PATH = "fleet/plans_index"


def group_key(wave_index: int, destination: str) -> str:
    """The journal's name for one (wave, destination) dispatch group."""
    return f"{wave_index}:{destination}"


@dataclass(frozen=True)
class FleetPlanRecord:
    """The persisted plan + progress cursor.

    ``done_groups`` (record v2) lists the (wave, destination) dispatch
    groups of the *current* wave whose members all completed — entries are
    ``"{wave_index}:{destination}"`` strings, pruned every time the wave
    cursor advances.  A resuming planner skips those groups instead of
    re-reconciling every member of a partially-done wave.  v1 records decode
    with the list empty: resume falls back to full-wave reconciliation,
    which is slower but equally safe.
    """

    intent: str
    waves: tuple[tuple[PlannedMove, ...], ...]
    next_wave: int = 0
    wave_started: bool = False
    generation: int = 0
    done_groups: tuple[str, ...] = ()

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "v": 2,
                "intent": self.intent,
                "waves": [
                    wire.pack_records([move.to_dict() for move in wave])
                    for wave in self.waves
                ],
                "next_wave": self.next_wave,
                "wave_started": self.wave_started,
                "gen": self.generation,
                "done_groups": list(self.done_groups),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FleetPlanRecord":
        fields = wire.decode(data)
        return cls(
            intent=fields["intent"],
            waves=tuple(
                tuple(
                    PlannedMove.from_dict(row)
                    for row in wire.unpack_records(wave)
                )
                for wave in fields["waves"]
            ),
            next_wave=fields["next_wave"],
            wave_started=fields["wave_started"],
            generation=fields.get("gen", 0),
            done_groups=tuple(fields.get("done_groups", [])),
        )

    @classmethod
    def from_plan(cls, plan: MigrationPlan) -> "FleetPlanRecord":
        return cls(
            intent=plan.intent,
            waves=tuple(wave.moves for wave in plan.waves),
        )

    def plan_waves(self) -> tuple[Wave, ...]:
        return tuple(
            Wave(index=index, moves=moves)
            for index, moves in enumerate(self.waves)
        )


@dataclass
class FleetPlanJournal:
    """The fleet plan record on the control machine's disk."""

    storage: UntrustedStorage
    owner: str = "fleet"

    @property
    def path(self) -> str:
        return f"{self.owner}/{FLEET_PLAN_PATH}"

    @property
    def _tmp_path(self) -> str:
        return f"{self.path}.tmp"

    def write(self, record: FleetPlanRecord) -> None:
        current = self.read()
        record = replace(
            record, generation=(current.generation if current else 0) + 1
        )
        self.storage.write(self._tmp_path, record.to_bytes())
        self.storage.sync(self._tmp_path)
        self.storage.rename(self._tmp_path, self.path)

    def write_plan(self, plan: MigrationPlan) -> None:
        """Persist a fresh plan with the cursor at wave 0, not started."""
        self.write(FleetPlanRecord.from_plan(plan))

    def mark_wave_started(self, index: int) -> None:
        record = self._require()
        self.write(replace(record, next_wave=index, wave_started=True))

    def mark_wave_done(self, index: int) -> None:
        record = self._require()
        self.write(
            replace(
                record, next_wave=index + 1, wave_started=False, done_groups=()
            )
        )

    def mark_group_done(self, index: int, destination: str) -> None:
        """Record one (wave, destination) group as fully completed.

        Idempotent; group entries accumulate within the current wave and
        are pruned by :meth:`mark_wave_done` when the cursor advances.
        """
        record = self._require()
        entry = group_key(index, destination)
        if entry in record.done_groups:
            return
        self.write(replace(record, done_groups=record.done_groups + (entry,)))

    def read(self) -> FleetPlanRecord | None:
        if not self.storage.exists(self.path):
            return None
        try:
            return FleetPlanRecord.from_bytes(self.storage.read(self.path))
        except (wire.WireError, KeyError):
            # Corrupted plan journal == no plan journal: resumption stalls
            # (the operator re-plans) but nothing unsafe can happen — every
            # member still has its own migration journal.
            self.storage.journal_corruption_count += 1
            return None

    def _require(self) -> FleetPlanRecord:
        record = self.read()
        if record is None:
            raise AssertionError("no fleet plan journaled")
        return record

    def clear(self) -> None:
        self.storage.delete(self._tmp_path)
        self.storage.delete(self.path)
        self.storage.sync(self._tmp_path)
        self.storage.sync(self.path)


@dataclass
class FleetPlanIndex:
    """Directory of the per-plan journals a multi-plan dispatch created.

    ``apply_many`` journals each tenant plan under its own owner prefix
    (``plan-0``, ``plan-1``, ...) so crash/resume reconciles every plan
    independently; this index is what lets ``resume_many`` *find* them
    after a planner restart.  Same rename discipline, same hint-only
    stakes: a lost index stalls multi-plan resumption, never correctness.
    """

    storage: UntrustedStorage

    @property
    def path(self) -> str:
        return FLEET_PLAN_INDEX_PATH

    @property
    def _tmp_path(self) -> str:
        return f"{self.path}.tmp"

    def write(self, labels: list[str]) -> None:
        self.storage.write(
            self._tmp_path, wire.encode({"v": 1, "labels": list(labels)})
        )
        self.storage.sync(self._tmp_path)
        self.storage.rename(self._tmp_path, self.path)

    def read(self) -> list[str]:
        if not self.storage.exists(self.path):
            return []
        try:
            fields = wire.decode(self.storage.read(self.path))
            return list(fields["labels"])
        except (wire.WireError, KeyError):
            self.storage.journal_corruption_count += 1
            return []

    def clear(self) -> None:
        self.storage.delete(self._tmp_path)
        self.storage.delete(self.path)
        self.storage.sync(self._tmp_path)
        self.storage.sync(self.path)
