"""The fleet planner: intents -> ordered waves under constraints.

Three intents, one shared machinery:

* ``drain(machine)`` — evacuate every fleet member from one machine (host
  maintenance, the paper's motivating scenario for migration at all).
* ``rebalance()`` — move members from overloaded to underloaded machines
  until occupancy is level (within one enclave).
* ``evacuate(tenant)`` — relocate every enclave of one tenant off its
  current machine (suspected host compromise affecting that tenant).

Planning is two phases, both deterministic (sorted iteration, no RNG):

1. **Placement** — each move gets a destination: the least-loaded machine
   (by projected fleet occupancy, ties by name) that respects anti-affinity
   (no group-mate already there or headed there) and capacity headroom.
   The default fast path keeps a lazy-invalidation heap of
   ``(occupancy, name)`` entries so each move costs O(log machines)
   amortized instead of a full O(machines) scan; the scan survives behind
   ``fast=False`` as the equivalence oracle (see
   ``tests/unit/test_fleet_planner.py``) and both produce byte-identical
   plans and error messages.
2. **Packing** — moves are packed into ordered waves greedy-first-fit under
   the per-wave caps (moves touching one machine, per-tenant concurrency).

Both phases raise :class:`~repro.errors.PlanInfeasibleError` the moment a
move cannot be satisfied — never an unbounded loop, never a silently
shorter plan.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable

from repro.errors import PlanInfeasibleError
from repro.fleet.model import (
    FleetConstraints,
    FleetMember,
    MigrationPlan,
    PlannedMove,
    Wave,
)


def _placement(members: list[FleetMember]) -> dict[str, str]:
    """Current ``member name -> machine`` map, snapshot at plan time."""
    return {member.name: member.machine for member in members}


def _infeasible(
    member: FleetMember,
    candidates: list[str],
    constraints: FleetConstraints,
    intent: str,
) -> None:
    """The one placement-infeasibility message, shared by scan and heap."""
    raise PlanInfeasibleError(
        f"{intent}: no feasible destination for {member.name!r} "
        f"(candidates {sorted(candidates)}, "
        f"effective capacity {constraints.effective_capacity}, "
        f"anti-affinity group {member.anti_affinity_group!r})"
    )


class _LoadHeap:
    """Least-loaded-machine index: the phase-1 placement fast path.

    A lazy-invalidation min-heap of ``(occupancy, name)`` entries over every
    machine.  :meth:`adjust` pushes a fresh entry instead of re-heapifying;
    stale entries (whose occupancy no longer matches the counter) are
    discarded when popped — the freshest entry for each machine is always
    present, so dropping stale ones is safe.  :meth:`pick` pops until the
    first entry feasible for the current move and pushes the fresh-but-
    infeasible ones back, which reproduces exactly the scan's
    ``min(feasible, key=(occupancy, name))`` choice and tie-break.

    Per move this costs O((s + 1) log machines) where *s* counts machines
    that are more lightly loaded than the winner yet infeasible for this
    particular move (the source, drained machines, full machines,
    anti-affinity sites) — small in practice, versus the scan's
    unconditional O(machines).
    """

    def __init__(self, occupancy: Counter, machines: list[str]):
        self._occupancy = occupancy
        self._heap: list[tuple[int, str]] = [
            (occupancy[name], name) for name in machines
        ]
        heapq.heapify(self._heap)

    def adjust(self, name: str, delta: int) -> None:
        """Apply an occupancy change and index the machine's new load."""
        self._occupancy[name] += delta
        heapq.heappush(self._heap, (self._occupancy[name], name))

    def pick(self, feasible: Callable[[str, int], bool]) -> str | None:
        """Least-loaded machine satisfying ``feasible(name, occupancy)``.

        Returns ``None`` when no machine qualifies (the caller raises the
        same :class:`PlanInfeasibleError` as the scan path).
        """
        skipped: list[tuple[int, str]] = []
        chosen: str | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            occupancy, name = entry
            if occupancy != self._occupancy[name]:
                continue  # stale: a fresher entry exists (or was consumed)
            if feasible(name, occupancy):
                chosen = name
                heapq.heappush(self._heap, entry)
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return chosen


def _pick_destination(
    member: FleetMember,
    candidates: list[str],
    occupancy: Counter,
    group_sites: dict[str, set[str]],
    constraints: FleetConstraints,
    intent: str,
) -> str:
    """Least-loaded feasible machine for one move (phase 1, scan oracle)."""
    group = member.anti_affinity_group
    feasible = [
        name
        for name in candidates
        if occupancy[name] + 1 <= constraints.effective_capacity
        and (group is None or name not in group_sites.get(group, set()))
    ]
    if not feasible:
        _infeasible(member, candidates, constraints, intent)
    return min(feasible, key=lambda name: (occupancy[name], name))


def _assign_destinations(
    members_to_move: list[FleetMember],
    all_members: list[FleetMember],
    machines: list[str],
    excluded: set[str],
    constraints: FleetConstraints,
    intent: str,
    fast: bool = True,
) -> list[PlannedMove]:
    """Phase 1 over every move, tracking projected occupancy and projected
    anti-affinity sites as assignments land.

    ``fast=True`` (the default) picks destinations through the
    :class:`_LoadHeap`; ``fast=False`` keeps the original linear scan as
    the equivalence oracle.  Both produce identical plans and errors.
    """
    occupancy = Counter(_placement(all_members).values())
    group_sites: dict[str, set[str]] = {}
    for member in all_members:
        if member.anti_affinity_group is not None:
            group_sites.setdefault(member.anti_affinity_group, set()).add(
                member.machine
            )
    heap = _LoadHeap(occupancy, machines) if fast else None
    tenant_moves: Counter = Counter()
    moves: list[PlannedMove] = []
    for member in sorted(members_to_move, key=lambda m: m.name):
        quota = constraints.tenant_plan_quota
        if quota is not None and tenant_moves[member.tenant] >= quota:
            raise PlanInfeasibleError(
                f"{intent}: tenant {member.tenant!r} migration quota "
                f"({quota}) exhausted with {member.name!r} still to move"
            )
        source = member.machine
        group = member.anti_affinity_group
        # The mover's own slot frees up: its source stops pinning the group.
        if group is not None:
            group_sites.get(group, set()).discard(source)
        if heap is not None:
            sites = group_sites.get(group, set()) if group is not None else ()
            destination = heap.pick(
                lambda name, load: name != source
                and name not in excluded
                and load + 1 <= constraints.effective_capacity
                and name not in sites
            )
            if destination is None:
                candidates = [
                    name
                    for name in machines
                    if name != source and name not in excluded
                ]
                _infeasible(member, candidates, constraints, intent)
            heap.adjust(source, -1)
            heap.adjust(destination, +1)
        else:
            candidates = [
                name for name in machines if name != source and name not in excluded
            ]
            destination = _pick_destination(
                member, candidates, occupancy, group_sites, constraints, intent
            )
            occupancy[source] -= 1
            occupancy[destination] += 1
        if group is not None:
            group_sites.setdefault(group, set()).add(destination)
        tenant_moves[member.tenant] += 1
        moves.append(
            PlannedMove(
                app_name=member.name,
                source=source,
                destination=destination,
                tenant=member.tenant,
            )
        )
    return moves


def pack_waves(
    moves: list[PlannedMove], constraints: FleetConstraints, intent: str
) -> tuple[Wave, ...]:
    """Phase 2: greedy first-fit of moves into ordered waves.

    A move lands in the earliest wave where its source machine, destination
    machine, and tenant all stay under their per-wave caps.  When even a
    brand-new empty wave cannot take the move, the caps themselves forbid
    it — typed infeasibility, not an infinite stream of empty waves.
    """
    machine_load: list[Counter] = []
    tenant_load: list[Counter] = []
    waves: list[list[PlannedMove]] = []
    for move in moves:
        placed = False
        for index in range(len(waves) + 1):
            if index == len(waves):
                if (
                    constraints.max_moves_per_machine < 1
                    or constraints.tenant_wave_quota < 1
                ):
                    raise PlanInfeasibleError(
                        f"{intent}: per-wave caps "
                        f"(machine {constraints.max_moves_per_machine}, "
                        f"tenant {constraints.tenant_wave_quota}) can never "
                        f"admit {move.app_name!r}"
                    )
                waves.append([])
                machine_load.append(Counter())
                tenant_load.append(Counter())
            if (
                machine_load[index][move.source] + 1
                <= constraints.max_moves_per_machine
                and machine_load[index][move.destination] + 1
                <= constraints.max_moves_per_machine
                and tenant_load[index][move.tenant] + 1
                <= constraints.tenant_wave_quota
            ):
                waves[index].append(move)
                machine_load[index][move.source] += 1
                machine_load[index][move.destination] += 1
                tenant_load[index][move.tenant] += 1
                placed = True
                break
        assert placed  # the fresh-wave branch either admits or raises
    return tuple(
        Wave(index=index, moves=tuple(wave)) for index, wave in enumerate(waves)
    )


def plan_drain(
    members: list[FleetMember],
    machines: list[str],
    machine: str,
    constraints: FleetConstraints,
    fast: bool = True,
    exclude: frozenset[str] | set[str] = frozenset(),
) -> MigrationPlan:
    """Evacuate every fleet member currently on ``machine``.

    ``exclude`` lists additional machines no move may land on — the rest of
    a maintenance window.  Draining hosts one by one *without* excluding the
    others refills each drained host from the next one's evacuees; excluding
    the whole window keeps the drained hosts empty and, as a consequence,
    keeps the rounds' resource claims mostly disjoint (what lets pipelined
    dispatch overlap a multi-host drain).
    """
    intent = f"drain:{machine}"
    movers = [member for member in members if member.machine == machine]
    moves = _assign_destinations(
        movers, members, machines, excluded={machine} | set(exclude),
        constraints=constraints, intent=intent, fast=fast,
    )
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )


def plan_rebalance(
    members: list[FleetMember],
    machines: list[str],
    constraints: FleetConstraints,
) -> MigrationPlan:
    """Level fleet occupancy: repeatedly move one member from the fullest
    machine to a feasible destination until max-min occupancy <= 1.

    Bounded: each step strictly shrinks the imbalance, so the loop runs at
    most (total members) iterations; infeasible placements raise.
    """
    intent = "rebalance"
    occupancy = Counter({name: 0 for name in machines})
    occupancy.update(_placement(members).values())
    # Simulated placement the loop mutates; realized as moves.
    location = _placement(members)
    by_machine: dict[str, list[FleetMember]] = {}
    for member in members:
        by_machine.setdefault(member.machine, []).append(member)
    for queue in by_machine.values():
        queue.sort(key=lambda m: m.name)
    moved: list[tuple[FleetMember, str, str]] = []
    for _ in range(len(members)):
        fullest = max(machines, key=lambda name: (occupancy[name], name))
        emptiest = min(machines, key=lambda name: (occupancy[name], name))
        if occupancy[fullest] - occupancy[emptiest] <= 1:
            break
        mover = by_machine[fullest].pop(0)
        group_sites: dict[str, set[str]] = {}
        for member in members:
            group = member.anti_affinity_group
            if group is not None and member.name != mover.name:
                group_sites.setdefault(group, set()).add(location[member.name])
        candidates = [name for name in machines if name != fullest]
        destination = _pick_destination(
            mover, candidates, occupancy, group_sites, constraints, intent
        )
        occupancy[fullest] -= 1
        occupancy[destination] += 1
        location[mover.name] = destination
        by_machine.setdefault(destination, []).append(mover)
        moved.append((mover, fullest, destination))
    moves = [
        PlannedMove(
            app_name=mover.name, source=source, destination=destination,
            tenant=mover.tenant,
        )
        for mover, source, destination in moved
    ]
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )


def plan_evacuate(
    members: list[FleetMember],
    machines: list[str],
    tenant: str,
    constraints: FleetConstraints,
    fast: bool = True,
) -> MigrationPlan:
    """Relocate every enclave of ``tenant`` off its current machine."""
    intent = f"evacuate:{tenant}"
    movers = [member for member in members if member.tenant == tenant]
    if not movers:
        raise PlanInfeasibleError(f"{intent}: tenant owns no fleet members")
    moves = _assign_destinations(
        movers, members, machines, excluded=set(), constraints=constraints,
        intent=intent, fast=fast,
    )
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )


# ------------------------------------------------------- pipelined admission
def group_claims(moves: tuple[PlannedMove, ...] | list[PlannedMove]) -> frozenset:
    """Union of resource claims of one (wave, destination) dispatch group."""
    claims: set = set()
    for move in moves:
        claims |= move.claims()
    return frozenset(claims)


def build_conflict_graph(
    groups: list[dict],
) -> list[tuple[int, ...]]:
    """Admission dependencies for pipelined dispatch.

    ``groups`` is the global dispatch order — every (wave, destination)
    group of every plan, serialized the way the record phase visited them.
    Each descriptor needs ``claims`` (a frozenset from :func:`group_claims`),
    ``plan`` (an opaque plan identity), and ``wave`` (the wave index inside
    that plan).  Returns, per group, the indices of earlier groups it must
    wait for.

    The edge rule: an earlier group gates a later one iff their claims
    intersect *and* they are not peers of the same wave of the same plan.
    Same-wave peers never gate each other — the planner's per-wave caps
    already sized that concurrency, and within-wave overlap is exactly what
    concurrent dispatch shipped.  Everything else with a shared machine or
    link serializes in recorded order, which keeps replay contention
    consistent with the wire bytes fixed at record time.

    Transitively-implied edges are left in (an O(n^2) scan, n = groups per
    dispatch, is cheap at fleet scale); the scheduler's admission gate
    counts unfinished dependencies, so redundant edges change nothing.
    """
    dependencies: list[tuple[int, ...]] = []
    for index, group in enumerate(groups):
        gates: list[int] = []
        for earlier in range(index):
            other = groups[earlier]
            if (
                other["plan"] == group["plan"]
                and other["wave"] == group["wave"]
            ):
                continue
            if other["claims"] & group["claims"]:
                gates.append(earlier)
        dependencies.append(tuple(gates))
    return dependencies
