"""The fleet planner: intents -> ordered waves under constraints.

Three intents, one shared machinery:

* ``drain(machine)`` — evacuate every fleet member from one machine (host
  maintenance, the paper's motivating scenario for migration at all).
* ``rebalance()`` — move members from overloaded to underloaded machines
  until occupancy is level (within one enclave).
* ``evacuate(tenant)`` — relocate every enclave of one tenant off its
  current machine (suspected host compromise affecting that tenant).

Planning is two phases, both deterministic (sorted iteration, no RNG):

1. **Placement** — each move gets a destination: the least-loaded machine
   (by projected fleet occupancy, ties by name) that respects anti-affinity
   (no group-mate already there or headed there) and capacity headroom.
2. **Packing** — moves are packed into ordered waves greedy-first-fit under
   the per-wave caps (moves touching one machine, per-tenant concurrency).

Both phases raise :class:`~repro.errors.PlanInfeasibleError` the moment a
move cannot be satisfied — never an unbounded loop, never a silently
shorter plan.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import PlanInfeasibleError
from repro.fleet.model import (
    FleetConstraints,
    FleetMember,
    MigrationPlan,
    PlannedMove,
    Wave,
)


def _placement(members: list[FleetMember]) -> dict[str, str]:
    """Current ``member name -> machine`` map, snapshot at plan time."""
    return {member.name: member.machine for member in members}


def _pick_destination(
    member: FleetMember,
    candidates: list[str],
    occupancy: Counter,
    group_sites: dict[str, set[str]],
    constraints: FleetConstraints,
    intent: str,
) -> str:
    """Least-loaded feasible machine for one move (phase 1)."""
    group = member.anti_affinity_group
    feasible = [
        name
        for name in candidates
        if occupancy[name] + 1 <= constraints.effective_capacity
        and (group is None or name not in group_sites.get(group, set()))
    ]
    if not feasible:
        raise PlanInfeasibleError(
            f"{intent}: no feasible destination for {member.name!r} "
            f"(candidates {sorted(candidates)}, "
            f"effective capacity {constraints.effective_capacity}, "
            f"anti-affinity group {group!r})"
        )
    return min(feasible, key=lambda name: (occupancy[name], name))


def _assign_destinations(
    members_to_move: list[FleetMember],
    all_members: list[FleetMember],
    machines: list[str],
    excluded: set[str],
    constraints: FleetConstraints,
    intent: str,
) -> list[PlannedMove]:
    """Phase 1 over every move, tracking projected occupancy and projected
    anti-affinity sites as assignments land."""
    occupancy = Counter(_placement(all_members).values())
    group_sites: dict[str, set[str]] = {}
    for member in all_members:
        if member.anti_affinity_group is not None:
            group_sites.setdefault(member.anti_affinity_group, set()).add(
                member.machine
            )
    tenant_moves: Counter = Counter()
    moves: list[PlannedMove] = []
    for member in sorted(members_to_move, key=lambda m: m.name):
        quota = constraints.tenant_plan_quota
        if quota is not None and tenant_moves[member.tenant] >= quota:
            raise PlanInfeasibleError(
                f"{intent}: tenant {member.tenant!r} migration quota "
                f"({quota}) exhausted with {member.name!r} still to move"
            )
        source = member.machine
        candidates = [
            name for name in machines if name != source and name not in excluded
        ]
        group = member.anti_affinity_group
        # The mover's own slot frees up: its source stops pinning the group.
        if group is not None:
            group_sites.get(group, set()).discard(source)
        destination = _pick_destination(
            member, candidates, occupancy, group_sites, constraints, intent
        )
        occupancy[source] -= 1
        occupancy[destination] += 1
        if group is not None:
            group_sites.setdefault(group, set()).add(destination)
        tenant_moves[member.tenant] += 1
        moves.append(
            PlannedMove(
                app_name=member.name,
                source=source,
                destination=destination,
                tenant=member.tenant,
            )
        )
    return moves


def pack_waves(
    moves: list[PlannedMove], constraints: FleetConstraints, intent: str
) -> tuple[Wave, ...]:
    """Phase 2: greedy first-fit of moves into ordered waves.

    A move lands in the earliest wave where its source machine, destination
    machine, and tenant all stay under their per-wave caps.  When even a
    brand-new empty wave cannot take the move, the caps themselves forbid
    it — typed infeasibility, not an infinite stream of empty waves.
    """
    machine_load: list[Counter] = []
    tenant_load: list[Counter] = []
    waves: list[list[PlannedMove]] = []
    for move in moves:
        placed = False
        for index in range(len(waves) + 1):
            if index == len(waves):
                if (
                    constraints.max_moves_per_machine < 1
                    or constraints.tenant_wave_quota < 1
                ):
                    raise PlanInfeasibleError(
                        f"{intent}: per-wave caps "
                        f"(machine {constraints.max_moves_per_machine}, "
                        f"tenant {constraints.tenant_wave_quota}) can never "
                        f"admit {move.app_name!r}"
                    )
                waves.append([])
                machine_load.append(Counter())
                tenant_load.append(Counter())
            if (
                machine_load[index][move.source] + 1
                <= constraints.max_moves_per_machine
                and machine_load[index][move.destination] + 1
                <= constraints.max_moves_per_machine
                and tenant_load[index][move.tenant] + 1
                <= constraints.tenant_wave_quota
            ):
                waves[index].append(move)
                machine_load[index][move.source] += 1
                machine_load[index][move.destination] += 1
                tenant_load[index][move.tenant] += 1
                placed = True
                break
        assert placed  # the fresh-wave branch either admits or raises
    return tuple(
        Wave(index=index, moves=tuple(wave)) for index, wave in enumerate(waves)
    )


def plan_drain(
    members: list[FleetMember],
    machines: list[str],
    machine: str,
    constraints: FleetConstraints,
) -> MigrationPlan:
    """Evacuate every fleet member currently on ``machine``."""
    intent = f"drain:{machine}"
    movers = [member for member in members if member.machine == machine]
    moves = _assign_destinations(
        movers, members, machines, excluded={machine}, constraints=constraints,
        intent=intent,
    )
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )


def plan_rebalance(
    members: list[FleetMember],
    machines: list[str],
    constraints: FleetConstraints,
) -> MigrationPlan:
    """Level fleet occupancy: repeatedly move one member from the fullest
    machine to a feasible destination until max-min occupancy <= 1.

    Bounded: each step strictly shrinks the imbalance, so the loop runs at
    most (total members) iterations; infeasible placements raise.
    """
    intent = "rebalance"
    occupancy = Counter({name: 0 for name in machines})
    occupancy.update(_placement(members).values())
    # Simulated placement the loop mutates; realized as moves.
    location = _placement(members)
    by_machine: dict[str, list[FleetMember]] = {}
    for member in members:
        by_machine.setdefault(member.machine, []).append(member)
    for queue in by_machine.values():
        queue.sort(key=lambda m: m.name)
    moved: list[tuple[FleetMember, str, str]] = []
    for _ in range(len(members)):
        fullest = max(machines, key=lambda name: (occupancy[name], name))
        emptiest = min(machines, key=lambda name: (occupancy[name], name))
        if occupancy[fullest] - occupancy[emptiest] <= 1:
            break
        mover = by_machine[fullest].pop(0)
        group_sites: dict[str, set[str]] = {}
        for member in members:
            group = member.anti_affinity_group
            if group is not None and member.name != mover.name:
                group_sites.setdefault(group, set()).add(location[member.name])
        candidates = [name for name in machines if name != fullest]
        destination = _pick_destination(
            mover, candidates, occupancy, group_sites, constraints, intent
        )
        occupancy[fullest] -= 1
        occupancy[destination] += 1
        location[mover.name] = destination
        by_machine.setdefault(destination, []).append(mover)
        moved.append((mover, fullest, destination))
    moves = [
        PlannedMove(
            app_name=mover.name, source=source, destination=destination,
            tenant=mover.tenant,
        )
        for mover, source, destination in moved
    ]
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )


def plan_evacuate(
    members: list[FleetMember],
    machines: list[str],
    tenant: str,
    constraints: FleetConstraints,
) -> MigrationPlan:
    """Relocate every enclave of ``tenant`` off its current machine."""
    intent = f"evacuate:{tenant}"
    movers = [member for member in members if member.tenant == tenant]
    if not movers:
        raise PlanInfeasibleError(f"{intent}: tenant owns no fleet members")
    moves = _assign_destinations(
        movers, members, machines, excluded=set(), constraints=constraints,
        intent=intent,
    )
    return MigrationPlan(
        intent=intent,
        waves=pack_waves(moves, constraints, intent),
        constraints=constraints,
    )
