"""Data model of the fleet control plane.

Everything here is *plan-time* data: which enclaves the fleet manages
(:class:`FleetMember`), what the operator allows (:class:`FleetConstraints`),
what the planner decided (:class:`MigrationPlan` — ordered :class:`Wave`\\ s
of :class:`PlannedMove`\\ s), and what execution produced
(:class:`PlanResult` with one
:class:`~repro.core.result.MigrationResult` per member).

Moves and plans are deliberately plain data — app names and machine
addresses, no live object handles — so a plan can be journaled durably
(:mod:`repro.fleet.journal`), golden-pinned as JSON, and rebuilt byte-equal
after a planner crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.result import MigrationOutcome, MigrationResult


@dataclass(frozen=True)
class FleetMember:
    """One enclave under fleet management.

    ``tenant`` scopes quota accounting; members sharing an
    ``anti_affinity_group`` must never be co-located on one machine (e.g.
    replicas of the same service, which a single machine compromise or
    maintenance drain must not be able to take out together).
    """

    app: object  # MigratableApp; untyped to keep the model import-light
    tenant: str = "default"
    anti_affinity_group: str | None = None

    @property
    def name(self) -> str:
        return self.app.app_name

    @property
    def machine(self) -> str:
        """Current placement (tracked live through the app handle)."""
        return self.app.app.machine.address


@dataclass(frozen=True)
class FleetConstraints:
    """What the operator allows a plan to do.

    * ``machine_capacity`` — most fleet enclaves one machine may host.
    * ``capacity_headroom`` — slots that must stay *free* on a destination
      after placement (burst/failover reserve), i.e. the effective planning
      capacity is ``machine_capacity - capacity_headroom``.
    * ``max_moves_per_machine`` — per-wave cap on migrations touching one
      machine as source or destination (models ME/link concurrency).
    * ``tenant_wave_quota`` — per-wave cap on concurrent moves of one
      tenant (blast-radius limit).
    * ``tenant_plan_quota`` — total moves one tenant may contribute to a
      single plan (``None`` = unlimited); exhausting it mid-plan makes the
      intent infeasible rather than silently partial.
    """

    machine_capacity: int = 16
    capacity_headroom: int = 0
    max_moves_per_machine: int = 4
    tenant_wave_quota: int = 4
    tenant_plan_quota: int | None = None

    @property
    def effective_capacity(self) -> int:
        return self.machine_capacity - self.capacity_headroom

    def to_dict(self) -> dict:
        return {
            "machine_capacity": self.machine_capacity,
            "capacity_headroom": self.capacity_headroom,
            "max_moves_per_machine": self.max_moves_per_machine,
            "tenant_wave_quota": self.tenant_wave_quota,
            "tenant_plan_quota": self.tenant_plan_quota,
        }


@dataclass(frozen=True)
class PlannedMove:
    """One member's planned relocation (pure data, journal-able)."""

    app_name: str
    source: str
    destination: str
    tenant: str = "default"

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "source": self.source,
            "destination": self.destination,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlannedMove":
        return cls(
            app_name=data["app"],
            source=data["source"],
            destination=data["destination"],
            tenant=data["tenant"],
        )

    def claims(self) -> frozenset[tuple]:
        """Resources this move occupies while in flight.

        The pipelined dispatcher admits a group only when no earlier
        unfinished group holds an intersecting claim.  A move claims both
        endpoint machines (ME/CPU work happens on each) and the link between
        them.  The link claim is *undirected* — record-then-replay fixes the
        wire bytes at record time, so two groups pushing opposite directions
        over one pipe must not reorder each other's contention.
        """
        link = (min(self.source, self.destination), max(self.source, self.destination))
        return frozenset(
            {
                ("machine", self.source),
                ("machine", self.destination),
                ("link",) + link,
            }
        )


@dataclass(frozen=True)
class Wave:
    """One batch of moves executed together (and journaled as one unit)."""

    index: int
    moves: tuple[PlannedMove, ...]


@dataclass(frozen=True)
class MigrationPlan:
    """The planner's output: ordered waves satisfying the constraints."""

    intent: str  # e.g. "drain:fleet-0", "rebalance", "evacuate:tenant-a"
    waves: tuple[Wave, ...]
    constraints: FleetConstraints = field(default_factory=FleetConstraints)

    @property
    def moves(self) -> list[PlannedMove]:
        return [move for wave in self.waves for move in wave.moves]

    def to_dict(self) -> dict:
        """JSON-able form (the golden-pin and CLI ``plan`` format)."""
        return {
            "intent": self.intent,
            "constraints": self.constraints.to_dict(),
            "waves": [
                [move.to_dict() for move in wave.moves] for wave in self.waves
            ],
        }


def already_complete_result(app) -> MigrationResult:
    """Synthesized result for a member found already migrated during
    :meth:`~repro.fleet.service.FleetService.resume_plan` reconciliation
    (its journal is cleared and the enclave serves at the destination — the
    crash happened after the member finished but before the fleet journal
    recorded the wave as done)."""
    return MigrationResult(
        outcome=MigrationOutcome.COMPLETED,
        txn_id="(reconciled)",
        enclave=app.enclave,
        diagnostics={"reconciled": True},
    )


@dataclass
class WaveOutcome:
    """Execution record of one wave: per-member typed results."""

    index: int
    moves: tuple[PlannedMove, ...]
    results: dict[str, MigrationResult] = field(default_factory=dict)
    #: Scheduler utilization summary for the dispatch that ran this wave
    #: (concurrent dispatch; ``None`` for serial waves, and for pipelined
    #: plans — there the whole-plan report lives on ``PlanResult``).
    schedule: dict | None = None

    @property
    def completed(self) -> bool:
        return all(bool(self.results.get(m.app_name)) for m in self.moves)


@dataclass
class PlanResult:
    """What applying (or resuming) a plan actually did."""

    intent: str
    waves: list[WaveOutcome] = field(default_factory=list)
    resumed: bool = False
    #: Waves the resume path found already marked done in the fleet journal
    #: (their members migrated before the planner crash; no new results).
    skipped_waves: int = 0
    #: Groups skipped by group-granular resume inside partially-done waves.
    skipped_groups: int = 0
    #: Scheduler utilization report for pipelined dispatch (whole plan, or
    #: the shared schedule when executed via ``apply_many``).
    utilization: dict | None = None

    @property
    def completed(self) -> bool:
        return all(wave.completed for wave in self.waves)

    def result_for(self, app_name: str) -> MigrationResult | None:
        for wave in self.waves:
            if app_name in wave.results:
                return wave.results[app_name]
        return None

    def summary(self) -> str:
        lines = [f"plan {self.intent}: {len(self.waves)} wave(s) executed"]
        if self.skipped_waves:
            lines[0] += f", {self.skipped_waves} already done"
        for wave in self.waves:
            outcomes = ", ".join(
                f"{name}={result.outcome.value}"
                for name, result in sorted(wave.results.items())
            )
            lines.append(f"  wave {wave.index}: {outcomes or '(empty)'}")
        lines.append("status: " + ("completed" if self.completed else "INCOMPLETE"))
        return "\n".join(lines)
