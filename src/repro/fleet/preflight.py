"""Per-wave pre-flight checks: fail fast, before anything freezes.

The migration protocol itself enforces every security property (the MEs
authenticate each other, policies are checked inside the trusted boundary,
the library refuses bad states) — but it enforces them *after* the source
enclave has frozen, so a doomed wave costs availability.  Pre-flight runs
the operator-visible subset of those checks host-side, from untrusted
metadata only, and rejects the wave with a typed
:class:`~repro.errors.PreflightError` while every member is still serving:

1. **Policy compatibility** — the fleet's provisioned policy set (region,
   allowed destinations, capability...) accepts each planned move.  This
   mirrors, never replaces, the ME's in-protocol R2/policy enforcement.
2. **ME version match** — source and destination Migration Enclaves carry
   the identical MRENCLAVE (the protocol's hard requirement for state
   hand-over) and the destination ME's endpoint is actually registered.
3. **Destination capacity** — projected fleet occupancy after the wave
   stays within capacity minus headroom.
4. **Source journal idle** — no member is mid-transaction: a pending
   migration journal means a previous attempt must be resumed (or
   completed) before the fleet re-plans that member.
5. **Registry adjudicable** — when the fleet carries a single-instance
   registry (clone defense, :mod:`repro.fleet.registry`), it must be
   reachable and must not have fenced an instance on a wave machine:
   dispatching a wave opens exactly the RESTORE/MIGRATE windows the
   cloning attacks race, so an unavailable arbiter means deny-by-default,
   and an unresolved clone incident on a participating machine means the
   operator investigates before moving more state there.

No ECALLs and no network traffic: pre-flight must be free to run (and
re-run, after a planner crash) without perturbing the protocol's measured
message sequence.  The registry check reads host-side state only (the
``offline`` flag and the recorded incident log).
"""

from __future__ import annotations

from collections import Counter

from repro.cloud.storage import MigrationJournal
from repro.core.policy import MigrationContext
from repro.errors import PolicyViolationError, PreflightError
from repro.fleet.model import Wave


def run_preflight(service, wave: Wave) -> None:
    """Check one wave against the live fleet; raise :class:`PreflightError`
    naming the first failed check.  ``service`` is the owning
    :class:`~repro.fleet.service.FleetService`."""
    dc = service.dc
    incoming: Counter = Counter()
    outgoing: Counter = Counter()
    for move in wave.moves:
        incoming[move.destination] += 1
        outgoing[move.source] += 1

    # 5. registry adjudicable (deny-by-default while it is unreachable)
    registry = getattr(service, "registry", None)
    if registry is not None:
        if registry.offline:
            raise PreflightError(
                f"wave {wave.index}: single-instance registry unavailable — "
                "refusing to open a migration window it cannot adjudicate"
            )
        machines = {move.source for move in wave.moves}
        machines |= {move.destination for move in wave.moves}
        for machine in sorted(machines):
            if registry.has_incident_on(machine):
                raise PreflightError(
                    f"wave {wave.index}: unresolved clone incident on "
                    f"{machine!r} (clear the registry incident log after "
                    "investigating before re-planning this machine)"
                )

    for move in wave.moves:
        member = service.members.get(move.app_name)
        if member is None:
            raise PreflightError(
                f"wave {wave.index}: {move.app_name!r} is not a fleet member"
            )
        app = member.app
        if app.enclave is None or not app.enclave.alive:
            raise PreflightError(
                f"wave {wave.index}: {move.app_name!r} has no running enclave"
            )
        if member.machine != move.source:
            raise PreflightError(
                f"wave {wave.index}: {move.app_name!r} is on "
                f"{member.machine!r}, plan expected {move.source!r}"
            )

        # 1. policy compatibility (operator-visible mirror of the ME check)
        try:
            service.policies.check(
                MigrationContext(
                    source_machine=move.source,
                    destination_machine=move.destination,
                    enclave_identity=app.enclave.identity,
                )
            )
        except PolicyViolationError as exc:
            raise PreflightError(
                f"wave {wave.index}: policy rejects "
                f"{move.app_name!r} -> {move.destination!r}: {exc}"
            ) from exc

        # 2. ME version match + destination ME reachable
        source_host = service.hosts.get(move.source)
        destination_host = service.hosts.get(move.destination)
        if source_host is None or destination_host is None:
            raise PreflightError(
                f"wave {wave.index}: no Migration Enclave installed on "
                f"{move.source if source_host is None else move.destination!r}"
            )
        if (
            source_host.enclave.identity.mrenclave
            != destination_host.enclave.identity.mrenclave
        ):
            raise PreflightError(
                f"wave {wave.index}: ME version mismatch between "
                f"{move.source!r} and {move.destination!r}"
            )
        if f"{move.destination}/me" not in dc.network.endpoints():
            raise PreflightError(
                f"wave {wave.index}: destination ME endpoint "
                f"{move.destination}/me is not registered"
            )

        # 4. source journal idle
        journal = MigrationJournal(
            dc.machine(move.source).storage, move.app_name
        )
        if journal.read() is not None:
            raise PreflightError(
                f"wave {wave.index}: {move.app_name!r} has a migration "
                "in progress (resume it before re-planning)"
            )

    # 3. destination capacity, projected over the whole wave
    constraints = service.constraints
    occupancy: Counter = Counter()
    for member in service.members.values():
        occupancy[member.machine] += 1
    for destination in sorted(incoming):
        projected = occupancy[destination] + incoming[destination] - outgoing[destination]
        if projected > constraints.effective_capacity:
            raise PreflightError(
                f"wave {wave.index}: {destination!r} would hold {projected} "
                f"fleet enclaves, over effective capacity "
                f"{constraints.effective_capacity}"
            )
