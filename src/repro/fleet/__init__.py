"""Fleet migration control plane: planner, pre-flight, executor, journal.

Operator intents (``drain``, ``rebalance``, ``evacuate``) become ordered
:class:`MigrationPlan` waves under :class:`FleetConstraints`;
:class:`FleetService` executes them through the unified
:class:`~repro.core.api.MigrationRequest` path with durable progress
journaling (:class:`FleetPlanJournal`), so a planner crash at any wave
boundary is recoverable via :meth:`FleetService.resume_plan`.

:class:`SingleInstanceRegistry` (``repro.fleet.registry``) is the fleet's
clone-detection arbiter: at most one live instance per guarded enclave
identity (invariant R3 against the cloning-window attacks of Briongos et
al.), enforced through epoch-monotonic claims, host-bound liveness probes,
and ME heartbeats, with deny-by-default when the registry is unreachable.
"""

from repro.errors import (
    CloneDetectedError,
    FencedInstanceError,
    PlanInfeasibleError,
    PreflightError,
    RegistryUnavailableError,
)
from repro.fleet.journal import FleetPlanJournal, FleetPlanRecord
from repro.fleet.model import (
    FleetConstraints,
    FleetMember,
    MigrationPlan,
    PlanResult,
    PlannedMove,
    Wave,
    WaveOutcome,
)
from repro.fleet.planner import (
    pack_waves,
    plan_drain,
    plan_evacuate,
    plan_rebalance,
)
from repro.fleet.preflight import run_preflight
from repro.fleet.registry import CloneIncident, SingleInstanceRegistry
from repro.fleet.service import FleetService, resume_plan

__all__ = [
    "CloneDetectedError",
    "CloneIncident",
    "FencedInstanceError",
    "FleetConstraints",
    "FleetMember",
    "FleetPlanJournal",
    "FleetPlanRecord",
    "FleetService",
    "MigrationPlan",
    "PlanInfeasibleError",
    "PlanResult",
    "PlannedMove",
    "PreflightError",
    "RegistryUnavailableError",
    "SingleInstanceRegistry",
    "Wave",
    "WaveOutcome",
    "pack_waves",
    "plan_drain",
    "plan_evacuate",
    "plan_rebalance",
    "resume_plan",
    "run_preflight",
]
