"""Deterministic demo fleet: the world behind ``python -m repro fleet``.

Four machines, sixteen counter enclaves placed round-robin, durable MEs
everywhere, two tenants interleaved, and one anti-affinity pair — enough
structure that every planner constraint is actually exercised by the demo
drain plan.  Seeded, so ``plan_drain("fleet-0")`` is byte-stable (it is
golden-pinned in ``tests/golden/fleet_plan_seed0.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.datacenter import DataCenter
from repro.core.protocol import (
    MigratableApp,
    MigrationEnclaveHost,
    install_all_migration_enclaves,
)
from repro.core.retry import RetryPolicy
from repro.apps.counter_app import MigratableBenchEnclave
from repro.sgx.identity import SigningKey
from repro.fleet.model import FleetConstraints
from repro.fleet.service import FleetService

DEMO_MACHINES = 4
DEMO_ENCLAVES = 16
#: apps 0 and 1 are replicas of one service: never co-located.
DEMO_GROUP = "replica-set-0"
DEMO_POLICY = RetryPolicy(max_attempts=3, base_delay=0.05)


@dataclass
class DemoFleet:
    dc: DataCenter
    service: FleetService
    apps: list[MigratableApp] = field(default_factory=list)
    #: tracked counter id per app (padded so the id identifies the app).
    counter_ids: list[int] = field(default_factory=list)


def build_demo_fleet(
    seed: int = 0,
    n_machines: int = DEMO_MACHINES,
    n_enclaves: int = DEMO_ENCLAVES,
    dispatch: str = "serial",
) -> DemoFleet:
    """Build the seeded demo world and a registered :class:`FleetService`.

    ``dispatch="concurrent"`` overlaps each wave's per-destination groups on
    the discrete-event scheduler (same bytes, contended virtual time).
    """
    dc = DataCenter(name="fleet-demo", seed=seed)
    for index in range(n_machines):
        dc.add_machine(f"fleet-{index}")
    hosts: dict[str, MigrationEnclaveHost] = install_all_migration_enclaves(
        dc, durable=True
    )
    service = FleetService(
        dc=dc,
        hosts=hosts,
        constraints=FleetConstraints(machine_capacity=n_enclaves),
        retry_policy=DEMO_POLICY,
        dispatch=dispatch,
    )
    dev_key = SigningKey.generate(dc.rng.child("fleet-demo-dev"))
    demo = DemoFleet(dc=dc, service=service)
    for index in range(n_enclaves):
        machine = dc.machine(f"fleet-{index % n_machines}")
        app = MigratableApp.deploy(
            dc,
            machine,
            MigratableBenchEnclave,
            dev_key,
            vm_name=f"fleet-vm-{index}",
            app_name=f"fleet-app-{index}",
        )
        app.retry_policy = DEMO_POLICY
        enclave = app.start_new()
        # Pad counter ids so each app's tracked counter id is unique
        # fleet-wide (id == index), then give each a distinct value — the
        # post-migration state check can attribute any serving instance.
        for _ in range(index):
            enclave.ecall("create_counter")
        counter_id, _ = enclave.ecall("create_counter")
        for _ in range(index % 5 + 1):
            enclave.ecall("increment_counter", counter_id)
        service.register(
            app,
            tenant=f"tenant-{'a' if index % 2 == 0 else 'b'}",
            anti_affinity_group=DEMO_GROUP if index < 2 else None,
        )
        demo.apps.append(app)
        demo.counter_ids.append(counter_id)
    return demo


def counter_values(demo: DemoFleet) -> dict[str, int]:
    """Read every app's tracked counter (asserting the enclave serves)."""
    values: dict[str, int] = {}
    for app, counter_id in zip(demo.apps, demo.counter_ids):
        values[app.app_name] = app.enclave.ecall("read_counter", counter_id)
    return values
