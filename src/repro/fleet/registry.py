"""Fleet-wide single-instance registry (the clone-detection control plane).

The paper's R1-R4 invariants assume at most one live instance per enclave
identity, but Briongos et al. ("The Real Menace of Cloning Attacks on SGX
Applications") show that the provisioning and migration windows let an
attacker race a second instance past exactly the checks a migration
framework implements: restore a stale snapshot while the original still
serves, rejoin a batched wave, relaunch from a healed disk image.  The
registry closes those windows at the *fleet* layer: one durable record per
enclave identity names the instance currently allowed to operate, and every
``migration_init`` of a clone-guarded enclave must claim that record (via
its local Migration Enclave) before any state is installed.

Detection rules, in the order they are applied to a claim:

1. **Fence is permanent** — a previously fenced instance is refused with
   :class:`~repro.errors.FencedInstanceError` no matter what it presents.
2. **Liveness** — if the recorded holder is still alive and operational
   (probed through a host-side callback bound by the owning application),
   any claim by a different instance is a clone.  The sole exception is the
   migration handoff: a ``MIGRATE`` claim from the planned destination with
   the successor epoch takes over from a frozen holder.
3. **Epoch monotonicity** — when the holder is gone (crash, termination),
   a takeover must present state at least as new as the registry has seen:
   the guard epoch is bumped on every freeze, restore, and migration
   install, so a clone restored from a stale snapshot (the healed-disk
   campaign) presents a regressed epoch and is fenced.
4. **Freeze advance** — ``migrate_out``/``stage_out`` report the freeze
   (epoch + planned destination) to the registry.  An interloper that
   claimed the identity between the freeze hitting disk and the advance
   arriving is detected *here* and fenced retroactively — that race is the
   classic cloning window, and its detection latency is exactly the
   in-flight time of the advance (reported by the chaos ``--clone`` sweep).

Migration Enclave instances are tracked separately by a **monotonic
heartbeat**: every ME checkpoint (v4) persists its heartbeat counter, so a
legitimately reinstalled ME continues the sequence while an ME cloned from
a healed older checkpoint regresses and is fenced on its first beat.

Failure posture: the registry is consulted on the serving path, so
unavailability must never become silent acceptance.  A claim against an
offline registry retries with exponential backoff in virtual time and then
*denies* with :class:`~repro.errors.RegistryUnavailableError` (transient:
the same instance may claim again once the registry is back).

Durability follows the PR-5/PR-7 journal pattern: one blob on the control
machine's untrusted storage, write-temp -> fsync -> atomic-rename, a
generation counter, and corruption-tolerant reads (a rotted blob counts as
``journal_corruption_count`` and yields an empty registry — which then
denies restores by rule 3 only when epochs regress, and adopts unknown
identities conservatively).  Liveness probes are runtime-only attachments:
a registry reloaded after a planner restart degrades to the epoch rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import wire
from repro.errors import (
    CloneDetectedError,
    FencedInstanceError,
    RegistryUnavailableError,
    ReproError,
)

INSTANCE_REGISTRY_PATH = "fleet/instance_registry"

#: Bounded retry/backoff against an unavailable registry: attempts and the
#: base virtual-time delay doubled per attempt (0.05, 0.1, 0.2 s).
UNAVAILABLE_RETRY_ATTEMPTS = 3
UNAVAILABLE_RETRY_BASE_DELAY = 0.05


@dataclass
class InstanceRecord:
    """One enclave identity's registration."""

    identity: bytes
    holder: bytes  # per-launch instance nonce of the allowed instance
    machine: str
    epoch: int
    frozen: bool = False
    planned_destination: str = ""
    fenced: tuple[bytes, ...] = ()

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "identity": self.identity,
                "holder": self.holder,
                "machine": self.machine,
                "epoch": self.epoch,
                "frozen": self.frozen,
                "planned_destination": self.planned_destination,
                "fenced": list(self.fenced),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "InstanceRecord":
        fields = wire.decode(data)
        return cls(
            identity=fields["identity"],
            holder=fields["holder"],
            machine=fields["machine"],
            epoch=fields["epoch"],
            frozen=fields["frozen"],
            planned_destination=fields["planned_destination"],
            fenced=tuple(fields["fenced"]),
        )


@dataclass(frozen=True)
class CloneIncident:
    """One detected-and-fenced clone (or heartbeat regression)."""

    identity: bytes
    instance: bytes
    machine: str
    kind: str  # claim kind, "advance", or "heartbeat"
    reason: str
    time: float  # virtual seconds at detection

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "identity": self.identity,
                "instance": self.instance,
                "machine": self.machine,
                "kind": self.kind,
                "reason": self.reason,
                "time_us": int(self.time * 1_000_000),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CloneIncident":
        fields = wire.decode(data)
        return cls(
            identity=fields["identity"],
            instance=fields["instance"],
            machine=fields["machine"],
            kind=fields["kind"],
            reason=fields["reason"],
            time=fields["time_us"] / 1_000_000,
        )


@dataclass
class _MeRecord:
    """Heartbeat tracking for one machine's Migration Enclave."""

    machine: str
    instance: bytes  # the ME's per-instance session epoch
    heartbeat: int
    fenced: tuple[bytes, ...] = ()

    def to_bytes(self) -> bytes:
        return wire.encode(
            {
                "machine": self.machine,
                "instance": self.instance,
                "heartbeat": self.heartbeat,
                "fenced": list(self.fenced),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "_MeRecord":
        fields = wire.decode(data)
        return cls(
            machine=fields["machine"],
            instance=fields["instance"],
            heartbeat=fields["heartbeat"],
            fenced=tuple(fields["fenced"]),
        )


@dataclass
class _State:
    records: dict[bytes, InstanceRecord] = field(default_factory=dict)
    me_records: dict[str, _MeRecord] = field(default_factory=dict)
    incidents: list[CloneIncident] = field(default_factory=list)
    generation: int = 0


class SingleInstanceRegistry:
    """Durable at-most-one-instance arbiter for clone-guarded enclaves."""

    def __init__(self, storage, clock, owner: str = "fleet"):
        self.storage = storage
        self.clock = clock
        self.owner = owner
        #: Simulated outage switch: while True, every consultation retries
        #: with backoff and then denies (never silently accepts).
        self.offline = False
        # identity -> zero-arg probe; True while the recorded holder is
        # alive and operational.  Runtime-only (never persisted).
        self._liveness: dict[bytes, object] = {}

    # ------------------------------------------------------------ storage
    @property
    def path(self) -> str:
        return INSTANCE_REGISTRY_PATH

    @property
    def _tmp_path(self) -> str:
        return f"{self.path}.tmp"

    def _load(self) -> _State:
        if not self.storage.exists(self.path):
            return _State()
        try:
            fields = wire.decode(self.storage.read(self.path))
            state = _State(generation=fields.get("gen", 0))
            for row in fields.get("records", []):
                record = InstanceRecord.from_bytes(row)
                state.records[record.identity] = record
            for row in fields.get("me", []):
                record = _MeRecord.from_bytes(row)
                state.me_records[record.machine] = record
            state.incidents = [
                CloneIncident.from_bytes(row) for row in fields.get("incidents", [])
            ]
            return state
        except (wire.WireError, KeyError):
            # A rotted registry blob is an empty registry, not a crash: the
            # epoch/liveness rules still deny stale clones, and legitimate
            # instances re-register on their next claim.
            self.storage.journal_corruption_count += 1
            return _State()

    def _store(self, state: _State) -> None:
        state.generation += 1
        blob = wire.encode(
            {
                "v": 1,
                "gen": state.generation,
                "records": [
                    record.to_bytes()
                    for _, record in sorted(state.records.items())
                ],
                "me": [
                    record.to_bytes()
                    for _, record in sorted(state.me_records.items())
                ],
                "incidents": [incident.to_bytes() for incident in state.incidents],
            }
        )
        self.storage.write(self._tmp_path, blob)
        self.storage.sync(self._tmp_path)
        self.storage.rename(self._tmp_path, self.path)

    # ------------------------------------------------------- availability
    def _ensure_available(self, operation: str) -> None:
        """Deny-by-default with bounded retry/backoff in virtual time."""
        if not self.offline:
            return
        delay = UNAVAILABLE_RETRY_BASE_DELAY
        for _ in range(UNAVAILABLE_RETRY_ATTEMPTS):
            self.clock.advance(delay)
            delay *= 2
            if not self.offline:
                return
        raise RegistryUnavailableError(
            f"single-instance registry unreachable for {operation} after "
            f"{UNAVAILABLE_RETRY_ATTEMPTS} attempts: denying by default"
        )

    # ---------------------------------------------------------- liveness
    def bind_liveness(self, identity: bytes, probe) -> None:
        """Attach a host-side probe for the identity's current holder.

        ``probe()`` must return True while the holder instance is alive and
        operational.  Rebound on every legitimate (re)launch; never
        persisted — after a registry reload the rules degrade to epoch
        monotonicity, which still fences every stale-state clone.
        """
        self._liveness[identity] = probe

    def _holder_live(self, identity: bytes) -> bool:
        probe = self._liveness.get(identity)
        if probe is None:
            return False
        try:
            return bool(probe())
        except ReproError:
            return False

    # ----------------------------------------------------------- fencing
    def _fence(
        self,
        state: _State,
        record: InstanceRecord,
        instance: bytes,
        machine: str,
        kind: str,
        reason: str,
    ) -> CloneIncident:
        if instance not in record.fenced:
            record.fenced = record.fenced + (instance,)
        incident = CloneIncident(
            identity=record.identity,
            instance=instance,
            machine=machine,
            kind=kind,
            reason=reason,
            time=self.clock.now,
        )
        state.incidents.append(incident)
        return incident

    # ------------------------------------------------------------- claims
    def claim(
        self,
        identity: bytes,
        instance: bytes,
        *,
        machine: str,
        epoch: int,
        kind: str,
    ) -> None:
        """Register ``instance`` as the identity's sole operator, or fence it.

        ``kind`` is the library init state that produced the claim
        (``"new"``, ``"restore"``, or ``"migrate"``); the migration handoff
        rule only applies to ``"migrate"`` claims.  Raises
        :class:`CloneDetectedError` (claimant fenced),
        :class:`FencedInstanceError`, or
        :class:`RegistryUnavailableError`; returns silently on success.
        """
        self._ensure_available(f"claim({kind})")
        state = self._load()
        record = state.records.get(identity)
        if record is not None and instance in record.fenced:
            self._store(state)
            raise FencedInstanceError(
                f"instance {instance.hex()} of identity {identity.hex()[:16]} "
                f"is fenced and may not operate"
            )
        if record is None:
            # First sight of this identity (bootstrap, or a registry that
            # was adopted mid-life / lost its blob): record and allow.
            state.records[identity] = InstanceRecord(
                identity=identity,
                holder=instance,
                machine=machine,
                epoch=epoch,
            )
            self._store(state)
            return
        if instance == record.holder:
            record.epoch = max(record.epoch, epoch)
            record.machine = machine
            self._store(state)
            return

        def accept() -> None:
            record.holder = instance
            record.machine = machine
            record.epoch = epoch
            record.frozen = False
            record.planned_destination = ""
            self._store(state)

        def deny(reason: str) -> None:
            incident = self._fence(state, record, instance, machine, kind, reason)
            self._store(state)
            raise CloneDetectedError(
                f"clone of identity {identity.hex()[:16]} fenced: "
                f"{incident.reason}"
            )

        handoff_ok = (
            kind == "migrate"
            and epoch == record.epoch + 1
            and (
                not record.planned_destination
                or machine == record.planned_destination
            )
        )
        if self._holder_live(identity):
            if record.frozen and handoff_ok:
                accept()  # migration handoff from a frozen (alive) holder
                return
            deny(
                f"second instance claimed ({kind}, epoch {epoch}) while the "
                f"registered holder on {record.machine} is live"
            )
        if record.frozen:
            if handoff_ok:
                accept()
                return
            deny(
                f"{kind} claim (epoch {epoch}) on an identity frozen "
                f"mid-migration towards "
                f"{record.planned_destination or 'unknown'} at epoch "
                f"{record.epoch} — the cloning window"
            )
        if epoch >= record.epoch:
            # Crash takeover: the holder is gone and the claimant presents
            # state at least as new as recorded.  ">=" (not ">") because a
            # crash between a successful claim and the epoch-bump persist
            # leaves the disk one bump behind the registry — the next
            # legitimate relaunch re-presents the recorded epoch.  Every
            # migration moves the epoch by two (freeze + install), so
            # healed/stale snapshots still regress strictly.
            accept()
            return
        deny(
            f"{kind} claim presented stale state (epoch {epoch} < recorded "
            f"{record.epoch}): restored from an old or healed snapshot"
        )

    def advance(
        self,
        identity: bytes,
        instance: bytes,
        *,
        epoch: int,
        destination: str,
        machine: str = "",
    ) -> None:
        """Record a freeze: the holder's state (at ``epoch``) left for
        ``destination``.  Called by the ME on ``migrate_out``/``stage_out``
        (and on staged re-routes), carrying the guard fields shipped inside
        the migration data.

        Detects the freeze/claim race: if a different instance claimed the
        identity after the freeze hit disk but before this advance arrived,
        that claimant is an interloper in the cloning window — it is fenced
        retroactively and the freezing holder reinstated.
        """
        self._ensure_available("advance")
        state = self._load()
        record = state.records.get(identity)
        if record is not None and instance in record.fenced:
            self._store(state)
            raise FencedInstanceError(
                f"fenced instance {instance.hex()} attempted to ship "
                f"migration data for identity {identity.hex()[:16]}"
            )
        if record is None:
            state.records[identity] = InstanceRecord(
                identity=identity,
                holder=instance,
                machine=machine,
                epoch=epoch,
                frozen=True,
                planned_destination=destination,
            )
            self._store(state)
            return
        if record.holder != instance:
            # The freeze was already durable when someone else claimed the
            # identity: fence the interloper, reinstate the freezing holder.
            self._fence(
                state,
                record,
                record.holder,
                record.machine,
                "advance",
                "claim raced a freeze in flight (cloning window): fenced on "
                "arrival of the frozen holder's migration data",
            )
            record.holder = instance
        if machine:
            record.machine = machine
        record.epoch = max(record.epoch, epoch)
        record.frozen = True
        record.planned_destination = destination
        self._store(state)

    # --------------------------------------------------------- ME heartbeats
    def me_beat(self, machine: str, instance: bytes, heartbeat: int) -> int:
        """One Migration Enclave heartbeat.

        The heartbeat counter is persisted in the ME's sealed checkpoint
        (v4), so a legitimately reinstalled ME *continues* the sequence
        while an ME restored from a healed older checkpoint regresses.  A
        non-increasing beat — same or different instance — is a clone and
        is fenced.  Returns the accepted heartbeat value.
        """
        self._ensure_available("me_beat")
        state = self._load()
        record = state.me_records.get(machine)
        if record is not None and instance in record.fenced:
            self._store(state)
            raise FencedInstanceError(
                f"fenced Migration Enclave instance on {machine} attempted "
                f"to heartbeat"
            )
        if record is None:
            state.me_records[machine] = _MeRecord(
                machine=machine, instance=instance, heartbeat=heartbeat
            )
            self._store(state)
            return heartbeat
        if heartbeat <= record.heartbeat:
            record.fenced = record.fenced + (instance,)
            state.incidents.append(
                CloneIncident(
                    identity=b"me:" + machine.encode(),
                    instance=instance,
                    machine=machine,
                    kind="heartbeat",
                    reason=(
                        f"heartbeat regression on {machine}: beat {heartbeat} "
                        f"<= recorded {record.heartbeat} — ME restored from a "
                        f"stale (healed) checkpoint"
                    ),
                    time=self.clock.now,
                )
            )
            self._store(state)
            raise CloneDetectedError(
                f"Migration Enclave clone on {machine} fenced: heartbeat "
                f"{heartbeat} regressed below {record.heartbeat}"
            )
        record.instance = instance
        record.heartbeat = heartbeat
        self._store(state)
        return heartbeat

    # ------------------------------------------------------- observability
    def record_of(self, identity: bytes) -> InstanceRecord | None:
        return self._load().records.get(identity)

    def incidents(self) -> list[CloneIncident]:
        return list(self._load().incidents)

    def incident_count(self) -> int:
        return len(self._load().incidents)

    def has_incident_on(self, machine: str) -> bool:
        return any(
            incident.machine == machine for incident in self._load().incidents
        )

    def clear(self) -> None:
        self.storage.delete(self._tmp_path)
        self.storage.delete(self.path)
        self.storage.sync(self._tmp_path)
        self.storage.sync(self.path)
