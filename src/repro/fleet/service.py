"""The fleet migration service: planner + pre-flight + executor + journal.

:class:`FleetService` is the control plane over a running data center.  It
keeps a registry of fleet members (apps with tenant and anti-affinity
metadata), turns operator intents into :class:`MigrationPlan`\\ s, and
executes plans wave by wave:

* every wave passes :func:`~repro.fleet.preflight.run_preflight` before
  anything freezes;
* dispatch goes through the unified request path — one
  :meth:`MigrationRequest.wave <repro.core.api.MigrationRequest.wave>` per
  (wave, destination) group, executed by ``MigratableApp._execute`` — so the
  fleet rides the exact batched stage/flush/complete protocol the chaos
  sweeps harden; with ``dispatch="concurrent"`` the groups of one wave
  overlap on the discrete-event scheduler (record-then-replay, see
  :mod:`repro.sim.scheduler`) so the wave costs its contended makespan in
  virtual time instead of the serial sum — same bytes, same results, only
  the timing model changes; with ``dispatch="pipelined"`` the wave barrier
  disappears entirely: all groups of all waves (and, via
  :meth:`FleetService.apply_many`, of multiple tenants' independent plans)
  replay on one scheduler, each admitted as soon as the machines and links
  it claims are free of earlier unfinished groups;
* members that park (``PENDING_RETRY``) get one in-line ``resume`` pass
  (the PR-2 retry/resume semantics), and stay typed-pending in the
  :class:`PlanResult` if the fault persists;
* progress is journaled durably at every boundary
  (:class:`~repro.fleet.journal.FleetPlanJournal`), so a planner crash at
  *any* instant leaves the fleet resumable via :meth:`resume_plan`.

The ``boundary_hook`` parameter is the chaos harness's crash seam: it is
called at every journal boundary (``planned``, ``started:k``,
``dispatched:k``, ``done:k``, ``complete``) and may raise to simulate the
planner process dying right there.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.datacenter import DataCenter
from repro.cloud.storage import MigrationJournal
from repro.core.api import MigrationRequest
from repro.core.policy import PolicySet
from repro.core.protocol import MigratableApp, MigrationEnclaveHost
from repro.core.result import MigrationOutcome, MigrationResult
from repro.core.retry import RetryPolicy
from repro.errors import InvalidParameterError, MigrationError, TransientError
from repro.fleet import planner
from repro.fleet.journal import (
    FleetPlanIndex,
    FleetPlanJournal,
    FleetPlanRecord,
    group_key,
)
from repro.fleet.model import (
    FleetConstraints,
    FleetMember,
    MigrationPlan,
    PlannedMove,
    PlanResult,
    Wave,
    WaveOutcome,
    already_complete_result,
)
from repro.fleet.preflight import run_preflight
from repro.sim.scheduler import Scheduler, TraceRecorder

#: Boundary callback: ``hook(stage, wave_index)``; ``wave_index`` is -1 for
#: the plan-level ``planned`` / ``complete`` boundaries.  Stages: ``planned``,
#: ``started``, ``group`` (after each (wave, destination) group finishes and
#: its completion is journaled), ``dispatched``, ``done``, ``complete``.
BoundaryHook = Callable[[str, int], None]

_NOOP_HOOK: BoundaryHook = lambda stage, index: None


def _materialize(source) -> MigrationPlan:
    """Resolve an ``apply_many`` entry: a plan, or a factory making one."""
    return source() if callable(source) else source


@dataclass
class FleetService:
    """One provider's migration control plane."""

    dc: DataCenter
    hosts: dict[str, MigrationEnclaveHost]
    constraints: FleetConstraints = field(default_factory=FleetConstraints)
    policies: PolicySet = field(default_factory=PolicySet)
    retry_policy: RetryPolicy | None = None
    #: Machine whose disk holds the fleet plan journal; defaults to the
    #: alphabetically first machine of the data center.
    control_machine: str | None = None
    #: Advisory request metadata: whether the fleet's MEs were installed
    #: with the attested-session cache (recorded into every request).
    session_resumption: bool = False
    #: ``"serial"`` executes a wave's per-destination groups one after the
    #: other on the virtual clock (the original behavior); ``"concurrent"``
    #: records each group's synchronous run as a segment trace and replays
    #: all groups together on the discrete-event scheduler, so the wave's
    #: virtual duration is the contended makespan instead of the sum;
    #: ``"pipelined"`` goes further and drops the wave barrier itself —
    #: every group of every wave (and of every plan in :meth:`apply_many`)
    #: replays on one scheduler, admitted the moment no earlier group with
    #: an intersecting machine/link resource claim is still running.  The
    #: protocol bytes are identical in all three modes — the groups execute
    #: in the same order with the same RNG draws; only the virtual timing
    #: differs.
    dispatch: str = "serial"
    #: Optional :class:`~repro.fleet.registry.SingleInstanceRegistry`.
    #: When set, pre-flight refuses to dispatch while the registry is
    #: unreachable (deny-by-default — a wave must not open a cloning
    #: window the arbiter cannot adjudicate) and ``status()`` reports
    #: clone incidents.
    registry: object = None
    members: dict[str, FleetMember] = field(default_factory=dict)
    #: The scheduler of the most recent concurrent wave (observability:
    #: event log, per-machine CPU busy totals, makespan).
    last_schedule: "Scheduler | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.dispatch not in ("serial", "concurrent", "pipelined"):
            raise InvalidParameterError(
                f"unknown dispatch mode {self.dispatch!r}"
            )

    # ------------------------------------------------------------ registry
    def register(
        self,
        app: MigratableApp,
        *,
        tenant: str = "default",
        anti_affinity_group: str | None = None,
    ) -> FleetMember:
        member = FleetMember(
            app=app, tenant=tenant, anti_affinity_group=anti_affinity_group
        )
        self.members[member.name] = member
        return member

    def placements(self) -> dict[str, list[str]]:
        """``machine -> sorted member names`` (the ``fleet status`` view)."""
        table: dict[str, list[str]] = {name: [] for name in self.machine_names()}
        for member in self.members.values():
            table.setdefault(member.machine, []).append(member.name)
        return {name: sorted(names) for name, names in table.items()}

    def machine_names(self) -> list[str]:
        return sorted(self.dc.machines)

    def journal(self) -> FleetPlanJournal:
        name = self.control_machine or self.machine_names()[0]
        return FleetPlanJournal(self.dc.machine(name).storage)

    # ------------------------------------------------------------- planner
    def plan_drain(
        self, machine: str, *, exclude: frozenset[str] | set[str] = frozenset()
    ) -> MigrationPlan:
        return planner.plan_drain(
            list(self.members.values()), self.machine_names(), machine,
            self.constraints, exclude=exclude,
        )

    def plan_rebalance(self) -> MigrationPlan:
        return planner.plan_rebalance(
            list(self.members.values()), self.machine_names(), self.constraints
        )

    def plan_evacuate(self, tenant: str) -> MigrationPlan:
        return planner.plan_evacuate(
            list(self.members.values()), self.machine_names(), tenant,
            self.constraints,
        )

    # ------------------------------------------------------------ executor
    def apply(
        self, plan: MigrationPlan, *, boundary_hook: BoundaryHook | None = None
    ) -> PlanResult:
        """Execute ``plan`` end to end, journaling at every boundary."""
        hook = boundary_hook or _NOOP_HOOK
        if self.dispatch == "pipelined":
            return self._apply_pipelined([(plan, self.journal())], hook)[0]
        return self._apply_plan(plan, self.journal(), hook)

    def apply_many(
        self,
        plans: list,
        *,
        boundary_hook: BoundaryHook | None = None,
    ) -> list[PlanResult]:
        """Execute several independent plans under one control plane.

        Each entry is a :class:`MigrationPlan` or a zero-argument *factory*
        returning one — factories are evaluated right before their plan
        executes, so a later plan may depend on the placements the earlier
        plans produced (multi-round drains).  Every plan gets its own
        journal (``plan-0``, ``plan-1``, ... on the control machine) and a
        :class:`FleetPlanIndex` entry, so a planner crash leaves each plan
        independently resumable via :meth:`resume_many`.

        With ``dispatch="pipelined"`` all plans' groups share one conflict
        graph and one scheduler — tenants' independent work overlaps in
        virtual time.  Other modes execute the plans back to back.
        """
        hook = boundary_hook or _NOOP_HOOK
        storage = self._control_storage()
        labels = [f"plan-{i}" for i in range(len(plans))]
        journals = [FleetPlanJournal(storage, owner=label) for label in labels]
        index = FleetPlanIndex(storage)
        index.write(labels)
        items = list(zip(plans, journals))
        if self.dispatch == "pipelined":
            outcomes = self._apply_pipelined(items, hook, labeled=True)
        else:
            outcomes = [
                self._apply_plan(_materialize(source), journal, hook)
                for source, journal in items
            ]
        index.clear()
        return outcomes

    def _apply_plan(
        self, plan: MigrationPlan, journal: FleetPlanJournal, hook: BoundaryHook
    ) -> PlanResult:
        """Serial/concurrent execution: waves run one after the other."""
        journal.write_plan(plan)
        hook("planned", -1)
        outcome = PlanResult(intent=plan.intent)
        for wave in plan.waves:
            outcome.waves.append(self._run_wave(wave, journal, hook))
        hook("complete", -1)
        journal.clear()
        return outcome

    def _run_wave(
        self, wave: Wave, journal: FleetPlanJournal, hook: BoundaryHook
    ) -> WaveOutcome:
        """One wave through the full boundary discipline (non-pipelined)."""
        run_preflight(self, wave)
        journal.mark_wave_started(wave.index)
        hook("started", wave.index)
        results, schedule = self._dispatch_wave(wave, journal=journal, hook=hook)
        hook("dispatched", wave.index)
        journal.mark_wave_done(wave.index)
        hook("done", wave.index)
        return WaveOutcome(
            index=wave.index, moves=wave.moves, results=results,
            schedule=schedule,
        )

    def _wave_groups(self, wave: Wave) -> list[tuple[str, list[PlannedMove]]]:
        """The wave's moves grouped by destination, in the (sorted) order
        every dispatch mode executes them."""
        groups: dict[str, list[PlannedMove]] = {}
        for move in wave.moves:
            groups.setdefault(move.destination, []).append(move)
        return [(destination, groups[destination]) for destination in sorted(groups)]

    def _dispatch_wave(
        self,
        wave: Wave,
        *,
        journal: FleetPlanJournal | None = None,
        hook: BoundaryHook | None = None,
    ) -> tuple[dict[str, MigrationResult], dict | None]:
        """One batched request per (wave, destination) group.

        Each group runs to completion — dispatch plus an in-line ``resume``
        pass for members that parked — before its per-group journal boundary
        (``mark_group_done`` when every member completed, then the ``group``
        hook).  With concurrent (or pipelined, on the reconcile path)
        dispatch and more than one group, the groups are recorded and then
        replayed together on the discrete-event scheduler; returns the
        per-member results and, for a replayed wave, the scheduler's
        utilization summary.
        """
        groups = self._wave_groups(wave)
        overlap = self.dispatch != "serial" and len(groups) > 1
        meter = self.dc.meter
        results: dict[str, MigrationResult] = {}
        recorded: list[tuple[str, TraceRecorder]] = []
        for destination, moves in groups:
            if overlap:
                # Record-then-replay: the protocol runs synchronously with
                # the clock frozen (same calls, same RNG draws, same wire
                # bytes as serial); only the virtual timing changes later.
                recorder = TraceRecorder(home=moves[0].source)
                with meter.recording(recorder):
                    group_results = self._run_group(destination, moves)
                recorded.append((destination, recorder))
            else:
                group_results = self._run_group(destination, moves)
            results.update(group_results)
            self._mark_group(journal, hook, wave.index, destination, group_results)
        schedule = None
        if overlap:
            scheduler = Scheduler(self.dc.clock)
            for destination, recorder in recorded:
                scheduler.spawn(
                    f"wave-{wave.index}->{destination}",
                    recorder.replay(),
                    home=recorder.home,
                )
            scheduler.run()
            self.last_schedule = scheduler
            schedule = scheduler.utilization_report()["summary"]
        return results, schedule

    def _run_group(
        self, destination: str, moves: list[PlannedMove]
    ) -> dict[str, MigrationResult]:
        """Dispatch one (wave, destination) group and drive its parked
        members' ``resume`` in-line, so the group's journal boundary means
        *finished*, not merely attempted."""
        batch, request = self._group_request(destination, moves)
        batch_results = MigratableApp._execute(request)
        results = {
            app.app_name: result for app, result in zip(batch, batch_results)
        }
        for move in moves:
            result = results[move.app_name]
            if result.outcome is MigrationOutcome.PENDING_RETRY:
                results[move.app_name] = self._try_resume(
                    self.members[move.app_name].app, fallback=result
                )
        return results

    def _mark_group(
        self,
        journal: FleetPlanJournal | None,
        hook: BoundaryHook | None,
        wave_index: int,
        destination: str,
        group_results: dict[str, MigrationResult],
    ) -> None:
        if journal is not None and all(
            result.outcome is MigrationOutcome.COMPLETED
            for result in group_results.values()
        ):
            journal.mark_group_done(wave_index, destination)
        if hook is not None:
            hook("group", wave_index)

    def _group_request(
        self, destination: str, moves: list[PlannedMove]
    ) -> tuple[list[MigratableApp], MigrationRequest]:
        batch = [self.members[move.app_name].app for move in moves]
        return batch, MigrationRequest.wave(
            batch,
            destination,
            retry_policy=self.retry_policy,
            session_resumption=self.session_resumption,
        )

    def _try_resume(
        self, app: MigratableApp, *, fallback: MigrationResult
    ) -> MigrationResult:
        """Drive one parked member's journal forward; if the fault window is
        still open the member simply stays pending (``fallback``)."""
        try:
            return app._execute(MigrationRequest.resume(
                app, retry_policy=self.retry_policy
            ))
        except TransientError:
            return fallback

    def _control_storage(self):
        name = self.control_machine or self.machine_names()[0]
        return self.dc.machine(name).storage

    # ---------------------------------------------------------- pipelined
    def _apply_pipelined(
        self,
        items: list,
        hook: BoundaryHook,
        *,
        labeled: bool = False,
    ) -> list[PlanResult]:
        """Record every plan's groups in serial order, then replay them all
        on one scheduler gated by the resource-conflict graph.

        The record phase is *exactly* the serial executor — same group
        order, same journal boundaries, same in-line resume — with the
        clock frozen and every charge captured per group.  State therefore
        evolves identically to serial dispatch and the wire bytes are
        byte-for-byte the same.  Replay then advances the clock once, to
        the makespan of the admission-gated schedule: a group starts the
        instant no earlier group holding an intersecting machine/link claim
        is still running (see :func:`repro.fleet.planner.
        build_conflict_graph`), so independent waves — and independent
        tenants' plans — overlap across the old wave barrier.
        """
        meter = self.dc.meter
        outcomes: list[PlanResult] = []
        descriptors: list[dict] = []
        for plan_id, (source, journal) in enumerate(items):
            plan = _materialize(source)
            journal.write_plan(plan)
            hook("planned", -1)
            outcome = PlanResult(intent=plan.intent)
            prefix = f"{journal.owner}:" if labeled else ""
            for wave in plan.waves:
                run_preflight(self, wave)
                journal.mark_wave_started(wave.index)
                hook("started", wave.index)
                results: dict[str, MigrationResult] = {}
                for destination, moves in self._wave_groups(wave):
                    recorder = TraceRecorder(home=moves[0].source)
                    with meter.recording(recorder):
                        group_results = self._run_group(destination, moves)
                    results.update(group_results)
                    self._mark_group(
                        journal, hook, wave.index, destination, group_results
                    )
                    descriptors.append(
                        {
                            "claims": planner.group_claims(moves),
                            "plan": plan_id,
                            "wave": wave.index,
                            "name": f"{prefix}wave-{wave.index}->{destination}",
                            "recorder": recorder,
                        }
                    )
                hook("dispatched", wave.index)
                journal.mark_wave_done(wave.index)
                hook("done", wave.index)
                outcome.waves.append(
                    WaveOutcome(
                        index=wave.index, moves=wave.moves, results=results
                    )
                )
            hook("complete", -1)
            journal.clear()
            outcomes.append(outcome)
        scheduler = Scheduler(self.dc.clock)
        dependencies = planner.build_conflict_graph(descriptors)
        processes: list = []
        for index, descriptor in enumerate(descriptors):
            processes.append(
                scheduler.spawn(
                    descriptor["name"],
                    descriptor["recorder"].replay(),
                    home=descriptor["recorder"].home,
                    after=[processes[j] for j in dependencies[index]],
                )
            )
        scheduler.run()
        self.last_schedule = scheduler
        report = scheduler.utilization_report()
        for outcome in outcomes:
            # Each plan gets its own copy: the report is a nested dict, and
            # one tenant mutating its view must not leak into the others'.
            outcome.utilization = copy.deepcopy(report)
        return outcomes

    # -------------------------------------------------------------- resume
    def resume_plan(
        self, *, boundary_hook: BoundaryHook | None = None
    ) -> PlanResult:
        """Pick up a journaled plan after a planner crash.

        Waves before the cursor are already done (skipped).  A wave marked
        *started* is reconciled group by group: groups the journal recorded
        as done are skipped outright; in the rest, members that completed
        before the crash are recognized (cleared journal, enclave serving at
        the destination), parked members are driven by their own ``resume``,
        and members the dispatch never reached are re-dispatched.  Every
        later wave then runs wave-at-a-time as in the non-pipelined
        :meth:`apply` (pipelined dispatch still overlaps a wave's groups on
        the scheduler; cross-wave overlap is not re-established on the
        crash path).

        Raises :class:`MigrationError` when no plan is journaled.
        """
        hook = boundary_hook or _NOOP_HOOK
        return self._resume_from(self.journal(), hook)

    def resume_many(
        self, *, boundary_hook: BoundaryHook | None = None
    ) -> list[PlanResult]:
        """Resume a multi-plan dispatch: every plan the index lists whose
        journal still exists is resumed independently; plans that finished
        before the crash are skipped silently.

        Raises :class:`MigrationError` when no multi-plan dispatch is in
        progress.
        """
        hook = boundary_hook or _NOOP_HOOK
        storage = self._control_storage()
        index = FleetPlanIndex(storage)
        labels = index.read()
        if not labels:
            raise MigrationError("no multi-plan dispatch in progress")
        outcomes: list[PlanResult] = []
        for label in labels:
            journal = FleetPlanJournal(storage, owner=label)
            if journal.read() is None:
                continue  # completed (and cleared) before the crash
            outcomes.append(self._resume_from(journal, hook))
        index.clear()
        return outcomes

    def _resume_from(
        self, journal: FleetPlanJournal, hook: BoundaryHook
    ) -> PlanResult:
        record = journal.read()
        if record is None:
            raise MigrationError("no fleet plan in progress")
        waves = record.plan_waves()
        outcome = PlanResult(
            intent=record.intent, resumed=True, skipped_waves=record.next_wave
        )
        cursor = record.next_wave
        if record.wave_started and cursor < len(waves):
            wave = waves[cursor]
            results, skipped = self._reconcile_wave(
                wave, done_groups=record.done_groups, journal=journal
            )
            outcome.skipped_groups = skipped
            journal.mark_wave_done(wave.index)
            hook("done", wave.index)
            outcome.waves.append(
                WaveOutcome(index=wave.index, moves=wave.moves, results=results)
            )
            cursor += 1
        for wave in waves[cursor:]:
            outcome.waves.append(self._run_wave(wave, journal, hook))
        hook("complete", -1)
        journal.clear()
        return outcome

    def _reconcile_wave(
        self,
        wave: Wave,
        *,
        done_groups: tuple[str, ...] = (),
        journal: FleetPlanJournal | None = None,
    ) -> tuple[dict[str, MigrationResult], int]:
        """Sort the members of an interrupted wave into done / parked /
        never-started, and finish each class its own way (R3-safe: nothing
        is ever dispatched twice).  Groups the journal already recorded as
        done are skipped wholesale — no member journal reads, no liveness
        probes; returns the results plus the skipped-group count.

        Group completions are journaled here, not by the partial
        re-dispatch: a re-dispatched subset completing says nothing about
        the group's *other* members (a parked member resumed above may
        still be ``PENDING_RETRY``), so ``mark_group_done`` fires only when
        the aggregate over the group's original membership is all
        ``COMPLETED`` — otherwise a second crash would skip the group and
        falsely report the stuck member done."""
        results: dict[str, MigrationResult] = {}
        fresh: list = []
        skipped_groups = 0
        done = set(done_groups)
        for destination, moves in self._wave_groups(wave):
            if group_key(wave.index, destination) in done:
                for move in moves:
                    results[move.app_name] = already_complete_result(
                        self.members[move.app_name].app
                    )
                skipped_groups += 1
                continue
            for move in moves:
                app = self.members[move.app_name].app
                here = MigrationJournal(app.app.machine.storage, app.app_name)
                if here.read() is not None:
                    # Mid-transaction (parked at the source ME, or arrived
                    # but unconfirmed): the member's own journal knows what
                    # to do.
                    results[move.app_name] = app._execute(
                        MigrationRequest.resume(
                            app, retry_policy=self.retry_policy
                        )
                    )
                elif (
                    app.app.machine.address == move.destination
                    and app.enclave is not None
                    and app.enclave.alive
                ):
                    # Completed before the crash; only the fleet cursor is
                    # stale.
                    results[move.app_name] = already_complete_result(app)
                else:
                    fresh.append(move)
        if fresh:
            partial = Wave(index=wave.index, moves=tuple(fresh))
            run_preflight(self, partial)
            partial_results, _ = self._dispatch_wave(partial)
            results.update(partial_results)
        if journal is not None:
            for destination, moves in self._wave_groups(wave):
                if group_key(wave.index, destination) in done:
                    continue
                self._mark_group(
                    journal,
                    None,
                    wave.index,
                    destination,
                    {move.app_name: results[move.app_name] for move in moves},
                )
        return results, skipped_groups

    # -------------------------------------------------------------- status
    def status(self) -> str:
        """Human-readable placement table + plan journal state.

        Surfaces the journal-v2 group cursor per plan: which (wave,
        destination) groups are already recorded done — exactly the groups
        a :meth:`resume_plan` would skip outright — against the current
        wave's group total.  A multi-plan dispatch (:meth:`apply_many`)
        lists every plan the index names."""
        lines = ["fleet placements:"]
        for machine, names in self.placements().items():
            lines.append(f"  {machine}: {', '.join(names) or '(empty)'}")
        storage = self._control_storage()
        labels = FleetPlanIndex(storage).read()
        if labels:
            lines.append(f"multi-plan dispatch: {len(labels)} plans indexed")
            for label in labels:
                journal = FleetPlanJournal(storage, owner=label)
                lines.extend(
                    self._plan_status_lines(journal.read(), label=label)
                )
        else:
            lines.extend(self._plan_status_lines(self.journal().read()))
        if self.registry is not None:
            state = (
                "offline (deny-by-default)" if self.registry.offline
                else "online"
            )
            lines.append(
                f"instance registry: {state}, "
                f"{self.registry.incident_count()} clone incidents"
            )
        return "\n".join(lines)

    def _plan_status_lines(self, record, *, label: str = "") -> list[str]:
        """Status lines for one journaled plan (or its absence)."""
        prefix = f"plan journal [{label}]" if label else "plan journal"
        if record is None:
            return [f"{prefix}: no plan in progress"]
        total = len(record.waves)
        state = "started" if record.wave_started else "pending"
        lines = [
            f"{prefix}: {record.intent} — wave "
            f"{record.next_wave}/{total} {state} "
            f"(generation {record.generation})"
        ]
        if record.wave_started and record.next_wave < total:
            wave = record.plan_waves()[record.next_wave]
            group_total = len(self._wave_groups(wave))
            done = sorted(record.done_groups)
            lines.append(
                f"  groups done (skipped on resume): "
                f"{len(done)}/{group_total}"
                + (f" — {', '.join(done)}" if done else "")
            )
        elif record.done_groups:
            # A crash between a group boundary and the wave-done boundary
            # can leave stale group entries with the wave cursor advanced;
            # show them rather than hide progress.
            lines.append(
                "  groups done (skipped on resume): "
                + ", ".join(sorted(record.done_groups))
            )
        return lines


def resume_plan(service: FleetService) -> PlanResult:
    """Module-level convenience: resume ``service``'s journaled plan."""
    return service.resume_plan()


def record_of(service: FleetService) -> FleetPlanRecord | None:
    """The currently journaled plan record, if any (observability helper)."""
    return service.journal().read()
