"""The fleet migration service: planner + pre-flight + executor + journal.

:class:`FleetService` is the control plane over a running data center.  It
keeps a registry of fleet members (apps with tenant and anti-affinity
metadata), turns operator intents into :class:`MigrationPlan`\\ s, and
executes plans wave by wave:

* every wave passes :func:`~repro.fleet.preflight.run_preflight` before
  anything freezes;
* dispatch goes through the unified request path — one
  :meth:`MigrationRequest.wave <repro.core.api.MigrationRequest.wave>` per
  (wave, destination) group, executed by ``MigratableApp._execute`` — so the
  fleet rides the exact batched stage/flush/complete protocol the chaos
  sweeps harden; with ``dispatch="concurrent"`` the groups of one wave
  overlap on the discrete-event scheduler (record-then-replay, see
  :mod:`repro.sim.scheduler`) so the wave costs its contended makespan in
  virtual time instead of the serial sum — same bytes, same results, only
  the timing model changes;
* members that park (``PENDING_RETRY``) get one in-line ``resume`` pass
  (the PR-2 retry/resume semantics), and stay typed-pending in the
  :class:`PlanResult` if the fault persists;
* progress is journaled durably at every boundary
  (:class:`~repro.fleet.journal.FleetPlanJournal`), so a planner crash at
  *any* instant leaves the fleet resumable via :meth:`resume_plan`.

The ``boundary_hook`` parameter is the chaos harness's crash seam: it is
called at every journal boundary (``planned``, ``started:k``,
``dispatched:k``, ``done:k``, ``complete``) and may raise to simulate the
planner process dying right there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.datacenter import DataCenter
from repro.cloud.storage import MigrationJournal
from repro.core.api import MigrationRequest
from repro.core.policy import PolicySet
from repro.core.protocol import MigratableApp, MigrationEnclaveHost
from repro.core.result import MigrationOutcome, MigrationResult
from repro.core.retry import RetryPolicy
from repro.errors import InvalidParameterError, MigrationError, TransientError
from repro.fleet import planner
from repro.fleet.journal import FleetPlanJournal, FleetPlanRecord
from repro.fleet.model import (
    FleetConstraints,
    FleetMember,
    MigrationPlan,
    PlannedMove,
    PlanResult,
    Wave,
    WaveOutcome,
    already_complete_result,
)
from repro.fleet.preflight import run_preflight
from repro.sim.scheduler import Scheduler, TraceRecorder

#: Boundary callback: ``hook(stage, wave_index)``; ``wave_index`` is -1 for
#: the plan-level ``planned`` / ``complete`` boundaries.
BoundaryHook = Callable[[str, int], None]


@dataclass
class FleetService:
    """One provider's migration control plane."""

    dc: DataCenter
    hosts: dict[str, MigrationEnclaveHost]
    constraints: FleetConstraints = field(default_factory=FleetConstraints)
    policies: PolicySet = field(default_factory=PolicySet)
    retry_policy: RetryPolicy | None = None
    #: Machine whose disk holds the fleet plan journal; defaults to the
    #: alphabetically first machine of the data center.
    control_machine: str | None = None
    #: Advisory request metadata: whether the fleet's MEs were installed
    #: with the attested-session cache (recorded into every request).
    session_resumption: bool = False
    #: ``"serial"`` executes a wave's per-destination groups one after the
    #: other on the virtual clock (the original behavior); ``"concurrent"``
    #: records each group's synchronous run as a segment trace and replays
    #: all groups together on the discrete-event scheduler, so the wave's
    #: virtual duration is the contended makespan instead of the sum.  The
    #: protocol bytes are identical either way — the groups execute in the
    #: same order with the same RNG draws; only the virtual timing differs.
    dispatch: str = "serial"
    members: dict[str, FleetMember] = field(default_factory=dict)
    #: The scheduler of the most recent concurrent wave (observability:
    #: event log, per-machine CPU busy totals, makespan).
    last_schedule: "Scheduler | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.dispatch not in ("serial", "concurrent"):
            raise InvalidParameterError(
                f"unknown dispatch mode {self.dispatch!r}"
            )

    # ------------------------------------------------------------ registry
    def register(
        self,
        app: MigratableApp,
        *,
        tenant: str = "default",
        anti_affinity_group: str | None = None,
    ) -> FleetMember:
        member = FleetMember(
            app=app, tenant=tenant, anti_affinity_group=anti_affinity_group
        )
        self.members[member.name] = member
        return member

    def placements(self) -> dict[str, list[str]]:
        """``machine -> sorted member names`` (the ``fleet status`` view)."""
        table: dict[str, list[str]] = {name: [] for name in self.machine_names()}
        for member in self.members.values():
            table.setdefault(member.machine, []).append(member.name)
        return {name: sorted(names) for name, names in table.items()}

    def machine_names(self) -> list[str]:
        return sorted(self.dc.machines)

    def journal(self) -> FleetPlanJournal:
        name = self.control_machine or self.machine_names()[0]
        return FleetPlanJournal(self.dc.machine(name).storage)

    # ------------------------------------------------------------- planner
    def plan_drain(self, machine: str) -> MigrationPlan:
        return planner.plan_drain(
            list(self.members.values()), self.machine_names(), machine,
            self.constraints,
        )

    def plan_rebalance(self) -> MigrationPlan:
        return planner.plan_rebalance(
            list(self.members.values()), self.machine_names(), self.constraints
        )

    def plan_evacuate(self, tenant: str) -> MigrationPlan:
        return planner.plan_evacuate(
            list(self.members.values()), self.machine_names(), tenant,
            self.constraints,
        )

    # ------------------------------------------------------------ executor
    def apply(
        self, plan: MigrationPlan, *, boundary_hook: BoundaryHook | None = None
    ) -> PlanResult:
        """Execute ``plan`` end to end, journaling at every boundary."""
        hook = boundary_hook or (lambda stage, index: None)
        journal = self.journal()
        journal.write_plan(plan)
        hook("planned", -1)
        outcome = PlanResult(intent=plan.intent)
        for wave in plan.waves:
            run_preflight(self, wave)
            journal.mark_wave_started(wave.index)
            hook("started", wave.index)
            results = self._dispatch_wave(wave)
            hook("dispatched", wave.index)
            journal.mark_wave_done(wave.index)
            hook("done", wave.index)
            outcome.waves.append(
                WaveOutcome(index=wave.index, moves=wave.moves, results=results)
            )
        hook("complete", -1)
        journal.clear()
        return outcome

    def _wave_groups(self, wave: Wave) -> list[tuple[str, list[PlannedMove]]]:
        """The wave's moves grouped by destination, in the (sorted) order
        both dispatch modes execute them."""
        groups: dict[str, list[PlannedMove]] = {}
        for move in wave.moves:
            groups.setdefault(move.destination, []).append(move)
        return [(destination, groups[destination]) for destination in sorted(groups)]

    def _dispatch_wave(self, wave: Wave) -> dict[str, MigrationResult]:
        """One batched request per (wave, destination) group, then a single
        resume pass over members that parked."""
        groups = self._wave_groups(wave)
        if self.dispatch == "concurrent" and len(groups) > 1:
            results = self._dispatch_groups_concurrent(wave, groups)
        else:
            results = self._dispatch_groups_serial(groups)
        for move in wave.moves:
            result = results[move.app_name]
            if result.outcome is MigrationOutcome.PENDING_RETRY:
                results[move.app_name] = self._try_resume(
                    self.members[move.app_name].app, fallback=result
                )
        return results

    def _group_request(
        self, destination: str, moves: list[PlannedMove]
    ) -> tuple[list[MigratableApp], MigrationRequest]:
        batch = [self.members[move.app_name].app for move in moves]
        return batch, MigrationRequest.wave(
            batch,
            destination,
            retry_policy=self.retry_policy,
            session_resumption=self.session_resumption,
        )

    def _dispatch_groups_serial(
        self, groups: list[tuple[str, list[PlannedMove]]]
    ) -> dict[str, MigrationResult]:
        results: dict[str, MigrationResult] = {}
        for destination, moves in groups:
            batch, request = self._group_request(destination, moves)
            batch_results = MigratableApp._execute(request)
            for app, result in zip(batch, batch_results):
                results[app.app_name] = result
        return results

    def _dispatch_groups_concurrent(
        self, wave: Wave, groups: list[tuple[str, list[PlannedMove]]]
    ) -> dict[str, MigrationResult]:
        """Record each destination group's synchronous run as a segment
        trace (clock frozen, bytes and RNG identical to serial dispatch),
        then replay every trace as a concurrent scheduler process with
        per-machine CPU and per-link bandwidth contention.  The clock ends
        at the contended makespan — what a wave whose groups genuinely
        overlap would take — instead of the serial sum."""
        meter = self.dc.meter
        results: dict[str, MigrationResult] = {}
        recorded: list[tuple[str, TraceRecorder]] = []
        for destination, moves in groups:
            batch, request = self._group_request(destination, moves)
            recorder = TraceRecorder(home=moves[0].source)
            with meter.recording(recorder):
                batch_results = MigratableApp._execute(request)
            for app, result in zip(batch, batch_results):
                results[app.app_name] = result
            recorded.append((destination, recorder))
        scheduler = Scheduler(self.dc.clock)
        for destination, recorder in recorded:
            scheduler.spawn(
                f"wave-{wave.index}->{destination}",
                recorder.replay(),
                home=recorder.home,
            )
        scheduler.run()
        self.last_schedule = scheduler
        return results

    def _try_resume(
        self, app: MigratableApp, *, fallback: MigrationResult
    ) -> MigrationResult:
        """Drive one parked member's journal forward; if the fault window is
        still open the member simply stays pending (``fallback``)."""
        try:
            return app._execute(MigrationRequest.resume(
                app, retry_policy=self.retry_policy
            ))
        except TransientError:
            return fallback

    # -------------------------------------------------------------- resume
    def resume_plan(
        self, *, boundary_hook: BoundaryHook | None = None
    ) -> PlanResult:
        """Pick up a journaled plan after a planner crash.

        Waves before the cursor are already done (skipped).  A wave marked
        *started* is reconciled member by member: members that completed
        before the crash are recognized (cleared journal, enclave serving at
        the destination), parked members are driven by their own ``resume``,
        and members the dispatch never reached are re-dispatched.  Every
        later wave then runs exactly as in :meth:`apply`.

        Raises :class:`MigrationError` when no plan is journaled.
        """
        hook = boundary_hook or (lambda stage, index: None)
        journal = self.journal()
        record = journal.read()
        if record is None:
            raise MigrationError("no fleet plan in progress")
        waves = record.plan_waves()
        outcome = PlanResult(
            intent=record.intent, resumed=True, skipped_waves=record.next_wave
        )
        cursor = record.next_wave
        if record.wave_started and cursor < len(waves):
            wave = waves[cursor]
            results = self._reconcile_wave(wave)
            journal.mark_wave_done(wave.index)
            hook("done", wave.index)
            outcome.waves.append(
                WaveOutcome(index=wave.index, moves=wave.moves, results=results)
            )
            cursor += 1
        for wave in waves[cursor:]:
            run_preflight(self, wave)
            journal.mark_wave_started(wave.index)
            hook("started", wave.index)
            results = self._dispatch_wave(wave)
            hook("dispatched", wave.index)
            journal.mark_wave_done(wave.index)
            hook("done", wave.index)
            outcome.waves.append(
                WaveOutcome(index=wave.index, moves=wave.moves, results=results)
            )
        hook("complete", -1)
        journal.clear()
        return outcome

    def _reconcile_wave(self, wave: Wave) -> dict[str, MigrationResult]:
        """Sort the members of an interrupted wave into done / parked /
        never-started, and finish each class its own way (R3-safe: nothing
        is ever dispatched twice)."""
        results: dict[str, MigrationResult] = {}
        fresh: list = []
        for move in wave.moves:
            app = self.members[move.app_name].app
            here = MigrationJournal(app.app.machine.storage, app.app_name)
            if here.read() is not None:
                # Mid-transaction (parked at the source ME, or arrived but
                # unconfirmed): the member's own journal knows what to do.
                results[move.app_name] = app._execute(
                    MigrationRequest.resume(app, retry_policy=self.retry_policy)
                )
            elif (
                app.app.machine.address == move.destination
                and app.enclave is not None
                and app.enclave.alive
            ):
                # Completed before the crash; only the fleet cursor is stale.
                results[move.app_name] = already_complete_result(app)
            else:
                fresh.append(move)
        if fresh:
            partial = Wave(index=wave.index, moves=tuple(fresh))
            run_preflight(self, partial)
            results.update(self._dispatch_wave(partial))
        return results

    # -------------------------------------------------------------- status
    def status(self) -> str:
        """Human-readable placement table + plan journal state."""
        lines = ["fleet placements:"]
        for machine, names in self.placements().items():
            lines.append(f"  {machine}: {', '.join(names) or '(empty)'}")
        record = self.journal().read()
        if record is None:
            lines.append("plan journal: no plan in progress")
        else:
            total = len(record.waves)
            state = "started" if record.wave_started else "pending"
            lines.append(
                f"plan journal: {record.intent} — wave "
                f"{record.next_wave}/{total} {state} "
                f"(generation {record.generation})"
            )
        return "\n".join(lines)


def resume_plan(service: FleetService) -> PlanResult:
    """Module-level convenience: resume ``service``'s journaled plan."""
    return service.resume_plan()


def record_of(service: FleetService) -> FleetPlanRecord | None:
    """The currently journaled plan record, if any (observability helper)."""
    return service.journal().read()
