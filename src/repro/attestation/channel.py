"""Authenticated-encryption secure channel over untrusted transport.

All enclave-to-enclave communication in the paper crosses untrusted channels
(host memory, the guest OS, the data-center network), so after attestation
the endpoints run records through AES-GCM with strictly increasing sequence
numbers.  Directional keys are derived from the session key so that records
cannot be reflected back to their sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import wire
from repro.crypto.gcm import AesGcm
from repro.crypto.kdf import HkdfSha256
from repro.errors import ChannelError, CryptoError


@dataclass
class _Direction:
    aead: AesGcm
    sequence: int = 0


def _direction_key(session_key: bytes, label: bytes) -> bytes:
    return HkdfSha256.derive(session_key, salt=b"repro-channel", info=label, length=16)


@dataclass
class SecureChannel:
    """One endpoint of an established secure channel.

    Create both endpoints from the same ``session_key`` with opposite
    ``initiator`` flags; the initiator's send key is the responder's receive
    key and vice versa.
    """

    session_key: bytes = field(repr=False)
    initiator: bool = True
    closed: bool = False

    def __post_init__(self) -> None:
        if len(self.session_key) < 16:
            raise ChannelError("session key too short")
        i2r = _direction_key(self.session_key, b"initiator->responder")
        r2i = _direction_key(self.session_key, b"responder->initiator")
        if self.initiator:
            self._send = _Direction(AesGcm(i2r))
            self._recv = _Direction(AesGcm(r2i))
        else:
            self._send = _Direction(AesGcm(r2i))
            self._recv = _Direction(AesGcm(i2r))

    def _require_open(self) -> None:
        if self.closed:
            raise ChannelError("channel is closed")

    def send(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext`` into a record for the peer."""
        self._require_open()
        seq = self._send.sequence
        self._send.sequence += 1
        iv = b"\x00" * 4 + seq.to_bytes(8, "big")
        bound_aad = seq.to_bytes(8, "big") + aad
        ciphertext, tag = self._send.aead.encrypt(iv, plaintext, bound_aad)
        return wire.encode({"seq": seq, "ct": ciphertext, "tag": tag, "aad": aad})

    def recv(self, record: bytes) -> tuple[bytes, bytes]:
        """Decrypt a record; enforces strict in-order delivery.

        Returns ``(plaintext, aad)``.  Any replayed, reordered, or tampered
        record raises :class:`ChannelError`.
        """
        self._require_open()
        try:
            fields = wire.decode(record)
            seq = fields["seq"]
            ciphertext = fields["ct"]
            tag = fields["tag"]
            aad = fields["aad"]
        except (wire.WireError, KeyError, TypeError) as exc:
            # WireError: undecodable record; KeyError: missing field;
            # TypeError: a field decoded to the wrong shape (e.g. dict
            # indexing on a non-dict).  Anything else is a real bug and
            # should surface, not be relabeled as a malformed record.
            raise ChannelError(f"malformed channel record: {exc}") from exc
        if seq != self._recv.sequence:
            raise ChannelError(
                f"sequence violation: expected {self._recv.sequence}, got {seq} "
                "(replay or reordering)"
            )
        iv = b"\x00" * 4 + seq.to_bytes(8, "big")
        bound_aad = seq.to_bytes(8, "big") + aad
        try:
            plaintext = self._recv.aead.decrypt(iv, ciphertext, tag, bound_aad)
        except CryptoError as exc:
            raise ChannelError(f"record authentication failed: {exc}") from exc
        self._recv.sequence += 1
        return plaintext, aad

    def close(self) -> None:
        self.closed = True


def channel_pair(session_key: bytes) -> tuple[SecureChannel, SecureChannel]:
    """Convenience for tests: both endpoints of a channel."""
    return (
        SecureChannel(session_key=session_key, initiator=True),
        SecureChannel(session_key=session_key, initiator=False),
    )
