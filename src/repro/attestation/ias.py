"""Simulated Intel Attestation Service (IAS).

The IAS is the trusted third party that verifies EPID signatures on quotes:
a verifier submits a quote, the IAS checks the group signature and its
revocation lists, and returns a signed attestation verdict.  Our simulation
holds the :class:`~repro.crypto.epid.EpidGroup` directly and signs verdicts
with an IAS report key so that verdicts themselves are authenticated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import schnorr
from repro.crypto.epid import EpidGroup
from repro.errors import AttestationError
from repro.sgx.quote import Quote
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class AttestationVerdict:
    """IAS response: is the quote from a genuine, non-revoked platform?"""

    ok: bool
    quote_bytes: bytes
    signature: schnorr.SchnorrSignature

    def signed_payload(self) -> bytes:
        return b"IAS-VERDICT|" + (b"OK" if self.ok else b"NO") + b"|" + self.quote_bytes


class IntelAttestationService:
    """Verifies EPID quotes; the root of trust for remote attestation."""

    def __init__(self, epid_group: EpidGroup, rng: DeterministicRng):
        self._epid_group = epid_group
        self._report_key = schnorr.generate_keypair(rng.child("ias-report-key"))

    @property
    def report_public_key(self) -> int:
        """Verifiers pin this key to authenticate IAS verdicts."""
        return self._report_key.public

    def verify_quote(self, quote_bytes: bytes) -> AttestationVerdict:
        """Check the quote's EPID signature and revocation status."""
        try:
            quote = Quote.from_bytes(quote_bytes)
        except Exception as exc:  # noqa: BLE001 - any parse failure is a bad quote
            raise AttestationError(f"malformed quote: {exc}") from exc
        ok = self._epid_group.verify(quote.signed_payload(), quote.epid_signature)
        verdict_body = b"IAS-VERDICT|" + (b"OK" if ok else b"NO") + b"|" + quote_bytes
        signature = schnorr.sign(self._report_key.private, verdict_body)
        return AttestationVerdict(ok=ok, quote_bytes=quote_bytes, signature=signature)


def check_verdict(verdict: AttestationVerdict, ias_public_key: int) -> bool:
    """Client-side authentication of an IAS verdict."""
    return verdict.ok and schnorr.verify(
        ias_public_key, verdict.signed_payload(), verdict.signature
    )
