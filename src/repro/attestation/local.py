"""Mutual local attestation with an embedded Diffie-Hellman exchange.

Two enclaves on the same machine prove their identities to each other via
CPU-MACed REPORTs and derive a shared secure-channel key (Section II-A6).
The DH public values ride inside the REPORT's user data, so the resulting
channel provably terminates inside the attested enclaves, and the REPORT MAC
key (derived from the CPU fuse) guarantees both parties are genuine enclaves
on the *same physical machine*.

Message flow (all messages cross untrusted host memory):

    initiator                                   responder
        | <------- msg0: responder TARGETINFO ------- |
        | -- msg1: REPORT_i(target=r, data=H(g_a)) -> |
        | <- msg2: REPORT_r(target=i, data=H(ga,gb)) -|
    both derive: K = HKDF(g^ab, transcript)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import wire
from repro.attestation.channel import SecureChannel
from repro.crypto.dh import DiffieHellman, decode_public, encode_public
from repro.crypto.kdf import sha256
from repro.errors import AttestationError
from repro.sgx.identity import EnclaveIdentity
from repro.sgx.report import Report, TargetInfo, pad_report_data
from repro.sgx.sdk import TrustedRuntime
from repro.sim.rng import DeterministicRng

IdentityPolicy = Callable[[EnclaveIdentity], bool]


def _bind_msg1(g_a: int) -> bytes:
    return pad_report_data(sha256(b"LA-msg1|" + encode_public(g_a)))


def _bind_msg2(g_a: int, g_b: int) -> bytes:
    return pad_report_data(sha256(b"LA-msg2|" + encode_public(g_a) + encode_public(g_b)))


def _transcript(g_a: int, g_b: int, id_a: EnclaveIdentity, id_b: EnclaveIdentity) -> bytes:
    return sha256(
        b"LA-transcript|"
        + encode_public(g_a)
        + encode_public(g_b)
        + id_a.to_bytes()
        + id_b.to_bytes()
    )


@dataclass
class LocalAttestationResult:
    """Outcome of a successful mutual local attestation."""

    peer_identity: EnclaveIdentity
    channel: SecureChannel


class LocalAttestationInitiator:
    """Runs the initiator side inside an enclave (uses only its SDK)."""

    def __init__(self, sdk: TrustedRuntime, rng: DeterministicRng, accept: IdentityPolicy | None = None):
        self._sdk = sdk
        self._dh = DiffieHellman()
        self._rng = rng
        self._accept = accept
        self._keypair = None

    def msg1(self, msg0: bytes) -> bytes:
        """Consume the responder's TARGETINFO; emit our report + g_a."""
        fields = wire.decode(msg0)
        target = TargetInfo(mrenclave=fields["target_mrenclave"])
        if self._sdk._cpu.meter is not None:
            self._sdk._cpu.meter.charge("dh_keygen", self._sdk._cpu.meter.model.dh_keygen)
        self._keypair = self._dh.generate_keypair(self._rng.child("la-init-dh"))
        report = self._sdk.create_report(target, _bind_msg1(self._keypair.public))
        return wire.encode(
            {"report": report.to_bytes(), "g_a": encode_public(self._keypair.public)}
        )

    def finish(self, msg2: bytes) -> LocalAttestationResult:
        """Verify the responder's report and derive the channel."""
        if self._keypair is None:
            raise AttestationError("msg1 must be produced before finish")
        fields = wire.decode(msg2)
        report = Report.from_bytes(fields["report"])
        g_b = decode_public(fields["g_b"])
        if not self._sdk.verify_report(report):
            raise AttestationError("initiator: responder report MAC invalid")
        if report.report_data != _bind_msg2(self._keypair.public, g_b):
            raise AttestationError("initiator: responder report does not bind DH values")
        if self._accept is not None and not self._accept(report.identity):
            raise AttestationError("initiator: responder identity rejected by policy")
        meter = self._sdk._cpu.meter
        if meter is not None:
            meter.charge("dh_shared", meter.model.dh_shared)
        transcript = _transcript(
            self._keypair.public, g_b, self._sdk.identity, report.identity
        )
        key = self._dh.derive_session_key(self._keypair.private, g_b, transcript)
        return LocalAttestationResult(
            peer_identity=report.identity,
            channel=SecureChannel(session_key=key, initiator=True),
        )


class LocalAttestationResponder:
    """Runs the responder side inside an enclave."""

    def __init__(self, sdk: TrustedRuntime, rng: DeterministicRng, accept: IdentityPolicy | None = None):
        self._sdk = sdk
        self._dh = DiffieHellman()
        self._rng = rng
        self._accept = accept

    def msg0(self) -> bytes:
        """Advertise our TARGETINFO so the initiator can report to us."""
        return wire.encode({"target_mrenclave": self._sdk.identity.mrenclave})

    def msg2(self, msg1: bytes) -> tuple[bytes, LocalAttestationResult]:
        """Verify the initiator's report; emit ours and derive the channel."""
        fields = wire.decode(msg1)
        report = Report.from_bytes(fields["report"])
        g_a = decode_public(fields["g_a"])
        if not self._sdk.verify_report(report):
            raise AttestationError("responder: initiator report MAC invalid")
        if report.report_data != _bind_msg1(g_a):
            raise AttestationError("responder: initiator report does not bind g_a")
        if self._accept is not None and not self._accept(report.identity):
            raise AttestationError("responder: initiator identity rejected by policy")
        meter = self._sdk._cpu.meter
        if meter is not None:
            meter.charge("dh_keygen", meter.model.dh_keygen)
        keypair = self._dh.generate_keypair(self._rng.child("la-resp-dh"))
        peer_target = TargetInfo(mrenclave=report.identity.mrenclave)
        my_report = self._sdk.create_report(peer_target, _bind_msg2(g_a, keypair.public))
        if meter is not None:
            meter.charge("dh_shared", meter.model.dh_shared)
        transcript = _transcript(g_a, keypair.public, report.identity, self._sdk.identity)
        key = self._dh.derive_session_key(keypair.private, g_a, transcript)
        result = LocalAttestationResult(
            peer_identity=report.identity,
            channel=SecureChannel(session_key=key, initiator=False),
        )
        msg2 = wire.encode(
            {"report": my_report.to_bytes(), "g_b": encode_public(keypair.public)}
        )
        return msg2, result


def attest_locally(
    initiator_sdk: TrustedRuntime,
    responder_sdk: TrustedRuntime,
    rng: DeterministicRng,
    initiator_accept: IdentityPolicy | None = None,
    responder_accept: IdentityPolicy | None = None,
) -> tuple[LocalAttestationResult, LocalAttestationResult]:
    """Run the whole local-attestation exchange between two co-located
    enclaves; returns (initiator_result, responder_result)."""
    initiator = LocalAttestationInitiator(initiator_sdk, rng.child("la-i"), initiator_accept)
    responder = LocalAttestationResponder(responder_sdk, rng.child("la-r"), responder_accept)
    msg0 = responder.msg0()
    msg1 = initiator.msg1(msg0)
    msg2, responder_result = responder.msg2(msg1)
    initiator_result = initiator.finish(msg2)
    return initiator_result, responder_result
