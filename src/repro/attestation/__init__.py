"""Attestation protocols: secure channels, local and remote attestation, IAS."""

from repro.attestation.channel import SecureChannel, channel_pair
from repro.attestation.ias import AttestationVerdict, IntelAttestationService, check_verdict
from repro.attestation.local import (
    LocalAttestationInitiator,
    LocalAttestationResponder,
    LocalAttestationResult,
    attest_locally,
)
from repro.attestation.remote import (
    RemoteAttestationInitiator,
    RemoteAttestationResponder,
    RemoteAttestationResult,
)

__all__ = [
    "SecureChannel",
    "channel_pair",
    "AttestationVerdict",
    "IntelAttestationService",
    "check_verdict",
    "LocalAttestationInitiator",
    "LocalAttestationResponder",
    "LocalAttestationResult",
    "attest_locally",
    "RemoteAttestationInitiator",
    "RemoteAttestationResponder",
    "RemoteAttestationResult",
]
