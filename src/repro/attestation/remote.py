"""Mutual remote attestation between enclaves on different machines.

Each side obtains an EPID quote over its DH public value from its local
Quoting Enclave, the peers exchange quotes over the untrusted network, and
each side verifies the other's quote through the Intel Attestation Service
(Section II-A6).  Identity policies let the caller insist, e.g., that the
peer has *exactly the same MRENCLAVE* — the check the Migration Enclaves
perform on each other (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import wire
from repro.attestation.channel import SecureChannel
from repro.attestation.ias import AttestationVerdict, check_verdict
from repro.crypto.dh import DiffieHellman, decode_public, encode_public
from repro.crypto.kdf import sha256
from repro.errors import AttestationError
from repro.sgx.identity import EnclaveIdentity
from repro.sgx.quote import Quote
from repro.sgx.report import pad_report_data
from repro.sgx.sdk import TrustedRuntime
from repro.sim.rng import DeterministicRng

IdentityPolicy = Callable[[EnclaveIdentity], bool]
IasVerifier = Callable[[bytes], AttestationVerdict]


def _bind_msg1(g_a: int) -> bytes:
    return pad_report_data(sha256(b"RA-msg1|" + encode_public(g_a)))


def _bind_msg2(g_a: int, g_b: int) -> bytes:
    return pad_report_data(sha256(b"RA-msg2|" + encode_public(g_a) + encode_public(g_b)))


def _transcript(g_a: int, g_b: int, id_a: EnclaveIdentity, id_b: EnclaveIdentity) -> bytes:
    return sha256(
        b"RA-transcript|"
        + encode_public(g_a)
        + encode_public(g_b)
        + id_a.to_bytes()
        + id_b.to_bytes()
    )


@dataclass
class RemoteAttestationResult:
    """Outcome of a successful mutual remote attestation."""

    peer_identity: EnclaveIdentity
    channel: SecureChannel
    transcript: bytes


class _RemoteAttestationParty:
    def __init__(
        self,
        sdk: TrustedRuntime,
        rng: DeterministicRng,
        ias_verify: IasVerifier,
        ias_public_key: int,
        accept: IdentityPolicy | None,
    ):
        self._sdk = sdk
        self._rng = rng
        self._ias_verify = ias_verify
        self._ias_public_key = ias_public_key
        self._accept = accept
        self._dh = DiffieHellman()

    def _check_quote(self, quote: Quote, expected_binding: bytes) -> None:
        if quote.report_data != expected_binding:
            raise AttestationError("peer quote does not bind the DH exchange")
        verdict = self._ias_verify(quote.to_bytes())
        if not check_verdict(verdict, self._ias_public_key):
            raise AttestationError("IAS rejected peer quote (revoked or forged platform)")
        if verdict.quote_bytes != quote.to_bytes():
            raise AttestationError("IAS verdict does not match the presented quote")
        if self._accept is not None and not self._accept(quote.identity):
            raise AttestationError("peer enclave identity rejected by policy")


class RemoteAttestationInitiator(_RemoteAttestationParty):
    def msg1(self) -> bytes:
        meter = self._sdk._cpu.meter
        if meter is not None:
            meter.charge("dh_keygen", meter.model.dh_keygen)
        self._keypair = self._dh.generate_keypair(self._rng.child("ra-init-dh"))
        quote = self._sdk.get_quote(_bind_msg1(self._keypair.public), basename=b"ra")
        return wire.encode(
            {"quote": quote.to_bytes(), "g_a": encode_public(self._keypair.public)}
        )

    def finish(self, msg2: bytes) -> RemoteAttestationResult:
        fields = wire.decode(msg2)
        quote = Quote.from_bytes(fields["quote"])
        g_b = decode_public(fields["g_b"])
        self._check_quote(quote, _bind_msg2(self._keypair.public, g_b))
        meter = self._sdk._cpu.meter
        if meter is not None:
            meter.charge("dh_shared", meter.model.dh_shared)
        transcript = _transcript(
            self._keypair.public, g_b, self._sdk.identity, quote.identity
        )
        key = self._dh.derive_session_key(self._keypair.private, g_b, transcript)
        return RemoteAttestationResult(
            peer_identity=quote.identity,
            channel=SecureChannel(session_key=key, initiator=True),
            transcript=transcript,
        )


class RemoteAttestationResponder(_RemoteAttestationParty):
    def msg2(self, msg1: bytes) -> tuple[bytes, RemoteAttestationResult]:
        fields = wire.decode(msg1)
        quote = Quote.from_bytes(fields["quote"])
        g_a = decode_public(fields["g_a"])
        self._check_quote(quote, _bind_msg1(g_a))
        meter = self._sdk._cpu.meter
        if meter is not None:
            meter.charge("dh_keygen", meter.model.dh_keygen)
        keypair = self._dh.generate_keypair(self._rng.child("ra-resp-dh"))
        my_quote = self._sdk.get_quote(_bind_msg2(g_a, keypair.public), basename=b"ra")
        if meter is not None:
            meter.charge("dh_shared", meter.model.dh_shared)
        transcript = _transcript(g_a, keypair.public, quote.identity, self._sdk.identity)
        key = self._dh.derive_session_key(keypair.private, g_a, transcript)
        result = RemoteAttestationResult(
            peer_identity=quote.identity,
            channel=SecureChannel(session_key=key, initiator=False),
            transcript=transcript,
        )
        msg2 = wire.encode(
            {"quote": my_quote.to_bytes(), "g_b": encode_public(keypair.public)}
        )
        return msg2, result
