"""Reproduction of "Migrating SGX Enclaves with Persistent State" (DSN'18).

A simulated SGX platform (crypto, CPU, enclaves, sealing, counters,
attestation) plus a cloud substrate (machines, VMs, live migration,
untrusted storage/network), and on top of it the paper's contribution: the
Migration Library and Migration Enclave that migrate sealed data and
monotonic counters safely between machines.

Typical entry points:

>>> from repro.cloud.datacenter import DataCenter
>>> from repro.core.protocol import MigratableApp, install_all_migration_enclaves

See README.md for a full quickstart and ``python -m repro`` for a demo.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
