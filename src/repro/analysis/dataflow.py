"""Worklist-based intra+interprocedural taint engine.

The engine abstractly executes one function at a time over a *taint
environment* (variable → set of :class:`Taint` values, each carrying the
def→use :class:`TraceStep` hops that justify it), and compresses every
function into a :class:`~repro.analysis.summaries.FunctionSummary` so flows
compose across calls without re-analysis:

* a call to a **sanitizer** (``seal_data``, ``encrypt``, ``hmac`` …) returns
  no taint — sealing is exactly how a secret legally leaves the enclave;
* a call resolved through the :class:`~repro.analysis.callgraph.Project`
  applies the callee's summary: parameter taint flows through
  ``returns_params``, and a callee that reads a secret itself
  (``returns_secret``) taints the caller's result with the callee's own
  trace spliced in — this is what makes a multi-hop ``--explain`` path;
* an **unresolved** call conservatively passes its arguments' taint through
  (an unknown helper is never assumed to sanitize).

Branches merge by union; loop bodies run twice so loop-carried taint
reaches a fixpoint (the lattice is finite: taints dedup per label).
Summaries themselves are computed by :func:`compute_summaries`, a bounded
worklist fixpoint over the whole project in reverse call order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallSite, FunctionInfo, Project
from repro.analysis.engine import is_constant_expr, terminal_name
from repro.analysis.findings import TraceStep
from repro.analysis.summaries import (
    ENCRYPT_NAMES,
    PARAM_LABEL,
    FunctionSummary,
    is_sanitizer_name,
    is_secret_name,
    param_index,
)

_MAX_TRACE_STEPS = 10
_SUMMARY_FIXPOINT_ROUNDS = 5


@dataclass(frozen=True)
class Taint:
    """One tainted value: its origin label plus the hops that carried it."""

    label: str
    steps: tuple[TraceStep, ...] = ()

    def extend(self, step: TraceStep) -> "Taint":
        if len(self.steps) >= _MAX_TRACE_STEPS:
            return self
        return Taint(self.label, self.steps + (step,))


Taints = frozenset  # frozenset[Taint]

_EMPTY: frozenset = frozenset()


def _merge(*sets: frozenset) -> frozenset:
    """Union taint sets, keeping one taint (shortest trace) per label."""
    best: dict[str, Taint] = {}
    for taints in sets:
        for taint in taints:
            kept = best.get(taint.label)
            if kept is None or len(taint.steps) < len(kept.steps):
                best[taint.label] = taint
    return frozenset(best.values())


@dataclass
class CallEvent:
    """One observed call with the taint reaching each argument."""

    node: ast.Call
    name: str  # terminal callee name
    site: CallSite | None
    arg_taints: list  # list[frozenset[Taint]] positional (receiver NOT included)
    kw_taints: dict  # dict[str, frozenset[Taint]]
    receiver_taints: frozenset = _EMPTY

    def iv_taints(self) -> frozenset:
        """Taint of the IV argument, for ``encrypt``/``seal`` calls."""
        for kw, taints in self.kw_taints.items():
            if kw in {"iv", "nonce"}:
                return taints
        if self.arg_taints:
            return self.arg_taints[0]
        return _EMPTY


@dataclass
class ReturnEvent:
    node: ast.Return
    taints: frozenset
    in_ecall: bool


@dataclass
class FunctionFlow:
    """Everything the taint tracker observed while executing one function."""

    fn: FunctionInfo
    returns: list = field(default_factory=list)  # list[ReturnEvent]
    calls: list = field(default_factory=list)  # list[CallEvent]
    return_exprs: list = field(default_factory=list)  # list[ast.AST|None]


class TaintTracker:
    """Abstractly execute one function, producing a :class:`FunctionFlow`.

    ``seed`` decides which bare reads are taint *sources*: it receives a
    ``Name``/``Attribute`` node and returns an origin label or ``None``.
    The default seed marks secret-named identifiers (R1 key material).
    """

    def __init__(
        self,
        project: Project,
        fn: FunctionInfo,
        summaries: dict | None = None,
        seed=None,
        seed_params: bool = False,
        name_seed_params: bool = True,
    ):
        self.project = project
        self.fn = fn
        self.summaries = summaries or {}
        self.seed = seed if seed is not None else self._default_seed
        self.flow = FunctionFlow(fn=fn)
        self.env: dict[str, frozenset] = {}
        self._summary_mode = seed_params
        self._name_seed_params = name_seed_params and not seed_params
        self._param_names = frozenset(fn.params)
        if seed_params:
            for index, name in enumerate(fn.params):
                self.env[name] = frozenset(
                    {Taint(PARAM_LABEL.format(index=index))}
                )
        self._site_by_call = {
            id(site.node): site
            for site in project.calls_by_caller.get(fn.fid, ())
        }

    # ----------------------------------------------------------------- seeds
    def _default_seed(self, node: ast.AST) -> str | None:
        name = (
            node.id if isinstance(node, ast.Name)
            else node.attr if isinstance(node, ast.Attribute)
            else ""
        )
        if isinstance(node, ast.Name):
            # A parameter is the *caller's* value — in summary mode the
            # param marker carries its flow, and rules that opt out of
            # name-seeding params (SEC008) treat e.g. a `key`-named lookup
            # parameter as the caller's problem, not a secret source.
            if not self._name_seed_params and node.id in self._param_names:
                return None
            if self._summary_mode and node.id == "key":
                return None
        return name if is_secret_name(name) else None

    def _step(self, node: ast.AST, note: str) -> TraceStep:
        line = getattr(node, "lineno", 1)
        return TraceStep(
            path=self.fn.module.display_path,
            line=line,
            text=self.fn.module.line_text(line),
            note=note,
        )

    # ------------------------------------------------------------------ run
    def run(self) -> FunctionFlow:
        self._exec_block(self.fn.node.body)
        return self.flow

    def _exec_block(self, stmts: list) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            merged = _merge(self._eval(stmt.target), self._eval(stmt.value))
            self._assign(stmt.target, merged, stmt, augment=True)
        elif isinstance(stmt, ast.Return):
            taints = self._eval(stmt.value) if stmt.value is not None else _EMPTY
            self.flow.returns.append(
                ReturnEvent(node=stmt, taints=taints, in_ecall=self.fn.is_ecall)
            )
            self.flow.return_exprs.append(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._assign(stmt.target, self._eval(stmt.iter), stmt)
            # Two passes expose loop-carried taint; the env only grows.
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, stmt)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are analyzed as their own functions
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _exec_branches(self, branches: list) -> None:
        """Execute each branch on a copy of the env; merge the results."""
        base = dict(self.env)
        merged: dict[str, frozenset] = dict(base)
        for body in branches:
            self.env = dict(base)
            self._exec_block(body)
            for key, taints in self.env.items():
                merged[key] = _merge(merged.get(key, _EMPTY), taints)
        self.env = merged

    # ------------------------------------------------------------ assignment
    def _key_for(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    def _assign(self, target: ast.AST, taints: frozenset, stmt: ast.stmt, augment: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, stmt, augment=augment)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, taints, stmt, augment=augment)
            return
        key = self._key_for(target)
        if key is None:
            # field store into a tracked object (data.msk = state.msk):
            # the *container* becomes tainted.
            if isinstance(target, ast.Attribute):
                base_key = self._key_for(target.value)
                if base_key is not None and taints:
                    step = self._step(stmt, f"stored into field of {base_key!r}")
                    stamped = frozenset(t.extend(step) for t in taints)
                    self.env[base_key] = _merge(self.env.get(base_key, _EMPTY), stamped)
            return
        if taints:
            step = self._step(stmt, f"assigned to {key!r}")
            taints = frozenset(t.extend(step) for t in taints)
        if augment:
            self.env[key] = _merge(self.env.get(key, _EMPTY), taints)
        else:
            self.env[key] = taints

    # ------------------------------------------------------------ evaluation
    def _eval(self, expr: ast.AST | None) -> frozenset:
        if expr is None or isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, ast.Name):
            taints = self.env.get(expr.id, _EMPTY)
            label = self.seed(expr)
            if label is not None:
                taints = _merge(
                    taints,
                    frozenset({Taint(label, (self._step(expr, f"secret {label!r} read"),))}),
                )
            return taints
        if isinstance(expr, ast.Attribute):
            # Field reads are *field-sensitive*: `obj.field` carries the
            # taint of the tracked key (`self.field`) plus any secret-named
            # link in the attribute chain — but NOT the base object's whole
            # taint, or every `enclave.id` read off an object built *with* a
            # key would count as a secret leaving the enclave.
            taints = _EMPTY
            key = self._key_for(expr)
            if key is not None:
                taints = self.env.get(key, _EMPTY)
            node: ast.AST = expr
            while isinstance(node, (ast.Attribute, ast.Name)):
                label = self.seed(node)
                if label is not None:
                    taints = _merge(
                        taints,
                        frozenset({Taint(label, (self._step(node, f"secret {label!r} read"),))}),
                    )
                if not isinstance(node, ast.Attribute):
                    break
                node = node.value
            return taints
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, (ast.BinOp,)):
            return _merge(self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, ast.BoolOp):
            return _merge(*(self._eval(value) for value in expr.values))
        if isinstance(expr, ast.Compare):
            return _merge(self._eval(expr.left), *(self._eval(c) for c in expr.comparators))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return _merge(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, ast.Subscript):
            return _merge(self._eval(expr.value), self._eval(expr.slice))
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _merge(*(self._eval(element) for element in expr.elts)) if expr.elts else _EMPTY
        if isinstance(expr, ast.Dict):
            parts = [self._eval(v) for v in expr.values] + [
                self._eval(k) for k in expr.keys if k is not None
            ]
            return _merge(*parts) if parts else _EMPTY
        if isinstance(expr, ast.JoinedStr):
            return _merge(*(self._eval(value) for value in expr.values)) if expr.values else _EMPTY
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in expr.generators:
                self._assign(gen.target, self._eval(gen.iter), expr)
            return self._eval(expr.elt)
        if isinstance(expr, ast.DictComp):
            for gen in expr.generators:
                self._assign(gen.target, self._eval(gen.iter), expr)
            return _merge(self._eval(expr.key), self._eval(expr.value))
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value)
        if isinstance(expr, ast.Yield):
            return self._eval(expr.value) if expr.value else _EMPTY
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        if isinstance(expr, ast.NamedExpr):
            taints = self._eval(expr.value)
            self._assign(expr.target, taints, expr)
            return taints
        return _EMPTY

    # ----------------------------------------------------------------- calls
    def _eval_call(self, call: ast.Call) -> frozenset:
        name = terminal_name(call.func)
        arg_taints = [self._eval(arg) for arg in call.args]
        kw_taints = {
            kw.arg or "**": self._eval(kw.value) for kw in call.keywords
        }
        receiver_taints = _EMPTY
        if isinstance(call.func, ast.Attribute):
            receiver_taints = self._eval(call.func.value)
        site = self._site_by_call.get(id(call))
        self.flow.calls.append(
            CallEvent(
                node=call,
                name=name,
                site=site,
                arg_taints=arg_taints,
                kw_taints=kw_taints,
                receiver_taints=receiver_taints,
            )
        )

        if is_sanitizer_name(name):
            return _EMPTY

        summaries = [
            self.summaries[callee]
            for callee in (site.callees if site else ())
            if callee in self.summaries
        ]
        if not summaries:
            # Unknown callee: taint passes through the arguments and the
            # receiver (never assume an unknown helper sanitizes —
            # `msk.hex()` is still the msk).
            parts = arg_taints + list(kw_taints.values()) + [receiver_taints]
            if not parts:
                return _EMPTY
            merged = _merge(*parts)
            if merged:
                step = self._step(call, f"passed through {name or 'call'}()")
                merged = frozenset(t.extend(step) for t in merged)
            return merged

        results: list[frozenset] = []
        for summary in summaries:
            if summary.sanitizes:
                continue
            callee_fn = self.project.function_at(summary.fid)
            callee_params = callee_fn.params if callee_fn else []
            is_method = bool(callee_fn and callee_fn.class_name) and (
                site is not None and site.kind in {"method", "dispatch"}
            )
            offset = 1 if is_method else 0  # receiver occupies param 0 (self)
            for index in summary.returns_params:
                taints = _EMPTY
                if is_method and index == 0:
                    taints = receiver_taints
                elif 0 <= index - offset < len(arg_taints):
                    taints = arg_taints[index - offset]
                elif callee_params and index < len(callee_params):
                    taints = kw_taints.get(callee_params[index], _EMPTY)
                if taints:
                    step = self._step(call, f"returned by {name}()")
                    results.append(frozenset(t.extend(step) for t in taints))
            if summary.returns_secret:
                step = self._step(call, f"returned by {name}() (reads {summary.secret_label!r})")
                trace = tuple(summary.secret_trace)[: _MAX_TRACE_STEPS - 1] + (step,)
                results.append(frozenset({Taint(summary.secret_label, trace)}))
        return _merge(*results) if results else _EMPTY


# --------------------------------------------------------------- summaries
def summarize_function(
    project: Project, fn: FunctionInfo, summaries: dict
) -> FunctionSummary:
    """Run the tracker over one function and compress the result."""
    tracker = TaintTracker(project, fn, summaries=summaries, seed_params=True)
    flow = tracker.run()

    returns_params: set[int] = set()
    returns_secret = False
    secret_label = ""
    secret_trace: tuple = ()
    for event in flow.returns:
        for taint in event.taints:
            index = param_index(taint.label)
            if index is not None:
                returns_params.add(index)
            elif not returns_secret or (
                secret_trace and len(taint.steps) < len(secret_trace)
            ):
                returns_secret = True
                secret_label = taint.label
                secret_trace = taint.steps

    returns_constant = bool(flow.return_exprs) and all(
        expr is not None and is_constant_expr(expr) for expr in flow.return_exprs
    )

    iv_param_uses: dict[int, int] = {}
    for event in flow.calls:
        if event.name in ENCRYPT_NAMES:
            for taint in event.iv_taints():
                index = param_index(taint.label)
                if index is not None:
                    iv_param_uses[index] = iv_param_uses.get(index, 0) + 1
        elif event.site is not None:
            for callee in event.site.callees:
                callee_summary = summaries.get(callee)
                if not callee_summary or not callee_summary.iv_param_uses:
                    continue
                callee_fn = project.function_at(callee)
                offset = 1 if (callee_fn and callee_fn.class_name) else 0
                for pos, arg in enumerate(event.arg_taints):
                    count = callee_summary.iv_param_uses.get(pos + offset, 0)
                    if not count:
                        continue
                    for taint in arg:
                        index = param_index(taint.label)
                        if index is not None:
                            iv_param_uses[index] = iv_param_uses.get(index, 0) + count

    return FunctionSummary(
        fid=fn.fid,
        returns_params=frozenset(returns_params),
        returns_secret=returns_secret,
        secret_label=secret_label,
        secret_trace=secret_trace,
        sanitizes=is_sanitizer_name(fn.name),
        returns_constant=returns_constant,
        iv_param_uses=iv_param_uses,
    )


def compute_summaries(project: Project) -> dict:
    """Bounded worklist fixpoint over every function in the project."""
    summaries: dict[str, FunctionSummary] = {}
    order = list(project.functions)
    for _ in range(_SUMMARY_FIXPOINT_ROUNDS):
        changed = False
        for fid in order:
            fn = project.functions[fid]
            updated = summarize_function(project, fn, summaries)
            if not updated.same_facts(summaries.get(fid)):
                summaries[fid] = updated
                changed = True
            else:
                summaries[fid] = updated
        if not changed:
            break
    return summaries
