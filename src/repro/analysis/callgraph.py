"""Project-wide symbol table and call graph for interprocedural analysis.

PR-1's rules were single-function pattern matchers, so any violation
laundered through a helper was invisible.  This module gives every rule the
whole-program view those flows require:

* a **symbol table** over all analyzed modules: module-level functions,
  classes with their base-class chains, and each class's methods (including
  whether a method is an ``@ecall`` entry point);
* light **attribute-type inference**: ``self.miglib = MigrationLibrary(...)``
  in ``__init__`` records ``miglib -> MigrationLibrary`` so a later
  ``self.miglib.migration_start(...)`` resolves to the library's method;
* the **call graph**, including the string-dispatch edge
  ``Enclave.ecall("name", ...) -> @ecall def name`` that is the only way
  untrusted code legally enters an enclave.

Resolution is deliberately name-based and conservative: ``self.method``
resolves through the class's project-local MRO, plain names through the
defining module then its explicit imports then a project-unique fallback,
and ``obj.method`` through inferred attribute types then a project-unique
method name.  An unresolvable call simply has no edge — rules must treat
missing edges as "unknown", never as "safe".

**Context modules** (``tests/`` by default) are parsed into the project so
their dispatch sites and call edges count for reachability, but no findings
are ever reported in them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import SourceModule, terminal_name

#: Decorator names that mark a trusted method as an ECALL entry point.
_ECALL_DECORATORS = frozenset({"ecall"})

#: Call names that construct a fresh object whose lifecycle starts over
#: (used by the lifecycle rule to reset its abstract state).
CONSTRUCTOR_HINTS = frozenset({"launch_enclave"})

#: Method names owned by builtin types; a project class defining one of
#: these must not capture every `obj.<name>()` call in the tree.
_BUILTIN_METHODS = frozenset(
    {
        "join", "split", "strip", "encode", "decode", "format", "replace",
        "startswith", "endswith", "upper", "lower", "hex", "get", "items",
        "keys", "values", "update", "pop", "append", "extend", "insert",
        "remove", "sort", "index", "count", "add", "discard", "clear",
        "copy", "read", "write", "close", "open", "send", "to_bytes",
        "from_bytes",
    }
)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    return {terminal_name(d) for d in node.decorator_list}


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    fid: str  # "display_path::Class.name" or "display_path::name"
    name: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    is_ecall: bool = False
    is_context: bool = False  # defined in a context module (tests/...)

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return names

    @property
    def qualname(self) -> str:
        return f"{self.class_name}.{self.name}" if self.class_name else self.name


@dataclass
class ClassInfo:
    """One class definition: methods, bases (by simple name), attr types."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fid
    attr_types: dict[str, str] = field(default_factory=dict)  # self.X -> Class


@dataclass
class CallSite:
    """One call expression with its resolved callee set."""

    caller: str  # fid of the enclosing function ("" at module level)
    module: SourceModule
    node: ast.Call
    callees: tuple[str, ...]  # resolved fids (may be empty)
    kind: str  # "direct" | "method" | "dispatch" | "constructor"
    dispatch_name: str | None = None  # for kind == "dispatch"


class Project:
    """All parsed modules plus the symbol table and call graph over them."""

    def __init__(self, modules: list[SourceModule], context: list[SourceModule] | None = None):
        self.modules: dict[str, SourceModule] = {m.display_path: m for m in modules}
        self.context_paths: set[str] = set()
        for mod in context or []:
            if mod.display_path not in self.modules:
                self.modules[mod.display_path] = mod
                self.context_paths.add(mod.display_path)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_functions: dict[str, dict[str, str]] = {}  # path -> name -> fid
        self.imports: dict[str, dict[str, str]] = {}  # path -> local name -> source name
        self.methods_by_name: dict[str, list[str]] = {}  # method name -> [fid]
        self.ecall_methods: dict[str, list[str]] = {}  # ecall name -> [fid]
        self.call_sites: list[CallSite] = []
        self.calls_by_caller: dict[str, list[CallSite]] = {}
        self.calls_by_callee: dict[str, list[CallSite]] = {}
        self.dispatch_sites: dict[str, list[CallSite]] = {}  # ecall name -> sites
        self._index()
        self._infer_attr_types()
        self._build_call_graph()

    # ------------------------------------------------------------- indexing
    def _index(self) -> None:
        for path, mod in self.modules.items():
            is_context = path in self.context_paths
            self.module_functions[path] = {}
            self.imports[path] = {}
            for node in mod.tree.body:
                self._index_top_level(mod, node, is_context)
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        self.imports[path][alias.asname or alias.name] = alias.name

    def _index_top_level(self, mod: SourceModule, node: ast.AST, is_context: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fid = f"{mod.display_path}::{node.name}"
            self.functions[fid] = FunctionInfo(
                fid=fid, name=node.name, module=mod, node=node, is_context=is_context
            )
            self.module_functions[mod.display_path][node.name] = fid
        elif isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=node.name,
                module=mod,
                node=node,
                bases=[terminal_name(base) for base in node.bases],
            )
            # Last definition of a class name wins project-wide; test doubles
            # shadowing a real class are rare and context classes never
            # overwrite analyzed ones.
            if node.name not in self.classes or not is_context:
                self.classes[node.name] = info
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                fid = f"{mod.display_path}::{node.name}.{item.name}"
                is_ecall = bool(_ECALL_DECORATORS & _decorator_names(item))
                self.functions[fid] = FunctionInfo(
                    fid=fid,
                    name=item.name,
                    module=mod,
                    node=item,
                    class_name=node.name,
                    is_ecall=is_ecall,
                    is_context=is_context,
                )
                info.methods[item.name] = fid
                self.methods_by_name.setdefault(item.name, []).append(fid)
                if is_ecall:
                    self.ecall_methods.setdefault(item.name, []).append(fid)

    def _infer_attr_types(self) -> None:
        """Record ``self.X = ClassName(...)`` assignments as attr types."""
        for info in self.classes.values():
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (isinstance(value, ast.Call) and isinstance(value.func, (ast.Name, ast.Attribute))):
                    continue
                cls_name = terminal_name(value.func)
                if cls_name not in self.classes:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types[target.attr] = cls_name

    # ----------------------------------------------------------- resolution
    def mro(self, class_name: str) -> Iterator[ClassInfo]:
        """The project-local base chain of a class, depth-first."""
        seen: set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            yield info
            stack.extend(info.bases)

    def resolve_method(self, class_name: str, method: str) -> str | None:
        for info in self.mro(class_name):
            fid = info.methods.get(method)
            if fid is not None:
                return fid
        return None

    def is_subclass_of(self, class_name: str, base: str) -> bool:
        return any(info.name == base for info in self.mro(class_name))

    def attr_type(self, class_name: str, attr: str) -> str | None:
        for info in self.mro(class_name):
            hit = info.attr_types.get(attr)
            if hit is not None:
                return hit
        return None

    def _resolve_name(self, mod_path: str, name: str) -> tuple[str, ...]:
        """A plain ``name(...)`` call: local def, explicit import, class
        constructor, then project-unique fallback."""
        local = self.module_functions.get(mod_path, {}).get(name)
        if local is not None:
            return (local,)
        imported = self.imports.get(mod_path, {}).get(name)
        if imported is not None and imported != name:
            name = imported
        if name in self.classes:
            init = self.resolve_method(name, "__init__")
            return (init,) if init else ()
        candidates = [
            fid
            for path, table in self.module_functions.items()
            if (fid := table.get(name)) is not None
        ]
        if len(candidates) == 1:
            return (candidates[0],)
        return ()

    def _resolve_call(self, caller: FunctionInfo | None, mod: SourceModule, call: ast.Call) -> CallSite:
        func = call.func
        caller_fid = caller.fid if caller else ""
        # --- Enclave.ecall("name", ...) string dispatch
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "ecall"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            name = call.args[0].value
            callees = tuple(self.ecall_methods.get(name, ()))
            return CallSite(
                caller=caller_fid, module=mod, node=call, callees=callees,
                kind="dispatch", dispatch_name=name,
            )
        if isinstance(func, ast.Name):
            if func.id in self.classes:
                init = self.resolve_method(func.id, "__init__")
                return CallSite(
                    caller=caller_fid, module=mod, node=call,
                    callees=(init,) if init else (), kind="constructor",
                )
            return CallSite(
                caller=caller_fid, module=mod, node=call,
                callees=self._resolve_name(mod.display_path, func.id), kind="direct",
            )
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            # self.method() -> own class MRO
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and caller is not None
                and caller.class_name is not None
            ):
                fid = self.resolve_method(caller.class_name, method)
                if fid is not None:
                    return CallSite(
                        caller=caller_fid, module=mod, node=call,
                        callees=(fid,), kind="method",
                    )
            # self.attr.method() -> inferred attribute type
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and caller is not None
                and caller.class_name is not None
            ):
                cls = self.attr_type(caller.class_name, receiver.attr)
                if cls is not None:
                    fid = self.resolve_method(cls, method)
                    if fid is not None:
                        return CallSite(
                            caller=caller_fid, module=mod, node=call,
                            callees=(fid,), kind="method",
                        )
            # module alias: `import repro.x as m; m.f()` or `wire.encode(...)`
            if isinstance(receiver, ast.Name):
                for path, table in self.module_functions.items():
                    if path.endswith(f"/{receiver.id}.py") and method in table:
                        return CallSite(
                            caller=caller_fid, module=mod, node=call,
                            callees=(table[method],), kind="direct",
                        )
            # obj.method() -> unique method name project-wide.  Never for
            # builtin str/bytes/dict/list method names or literal receivers:
            # `"".join(...)` must not resolve to a project `join()` (the EPID
            # group-join protocol happens to define one).
            candidates = self.methods_by_name.get(method, [])
            if isinstance(receiver, ast.Constant) or method in _BUILTIN_METHODS:
                candidates = []
            if len(candidates) == 1:
                return CallSite(
                    caller=caller_fid, module=mod, node=call,
                    callees=(candidates[0],), kind="method",
                )
            return CallSite(
                caller=caller_fid, module=mod, node=call, callees=(), kind="method",
            )
        return CallSite(caller=caller_fid, module=mod, node=call, callees=(), kind="direct")

    # ----------------------------------------------------------- call graph
    def _build_call_graph(self) -> None:
        for fid, info in self.functions.items():
            for node in ast.walk(info.node):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                    continue  # nested defs get their own pass if indexed
                if isinstance(node, ast.Call):
                    self._add_site(self._resolve_call(info, info.module, node))
        # Module-level calls (outside any def) still create dispatch edges.
        for path, mod in self.modules.items():
            in_function = {
                id(n)
                for f in self.functions.values()
                if f.module is mod
                for n in ast.walk(f.node)
            }
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call) and id(node) not in in_function:
                    self._add_site(self._resolve_call(None, mod, node))

    def _add_site(self, site: CallSite) -> None:
        self.call_sites.append(site)
        self.calls_by_caller.setdefault(site.caller, []).append(site)
        for callee in site.callees:
            self.calls_by_callee.setdefault(callee, []).append(site)
        if site.kind == "dispatch" and site.dispatch_name:
            self.dispatch_sites.setdefault(site.dispatch_name, []).append(site)

    # ---------------------------------------------------------- convenience
    def function_at(self, fid: str) -> FunctionInfo | None:
        return self.functions.get(fid)

    def analyzed_modules(self) -> Iterator[SourceModule]:
        """Modules findings may be reported in (context excluded)."""
        for path, mod in self.modules.items():
            if path not in self.context_paths:
                yield mod

    def enclave_classes(self) -> Iterator[ClassInfo]:
        """Classes that expose at least one ``@ecall`` entry point."""
        for info in self.classes.values():
            if info.module.display_path in self.context_paths:
                continue
            if any(
                self.functions[fid].is_ecall
                for fid in info.methods.values()
                if fid in self.functions
            ):
                yield info

    def reachable_from(self, entries: set[str]) -> set[str]:
        """Transitive closure over call-graph edges from ``entries``."""
        seen = set(entries)
        frontier = list(entries)
        while frontier:
            fid = frontier.pop()
            for site in self.calls_by_caller.get(fid, ()):
                for callee in site.callees:
                    if callee not in seen:
                        seen.add(callee)
                        frontier.append(callee)
        return seen
