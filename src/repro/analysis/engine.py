"""Rule engine: file walking, AST parsing, pragma suppression, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` only).  Each rule
receives a :class:`SourceModule` — the parsed tree plus a *trust-zone*
classification derived from the file's path — and yields findings.  Code
under ``cloud/``, ``attacks/``, ``examples/`` and ``benchmarks/`` is
**untrusted** (it models the adversary-controlled host side of the paper's
system model, Section III); everything else is trusted enclave/infrastructure
code.  Several rules only make sense on one side of that boundary.

Suppression is explicit and reviewable: a ``# repro: ignore[SEC002]``
pragma on the offending line (or on a pure-comment line directly above it)
silences the named rules at that location; the surrounding comment is the
place to justify *why* the flow is safe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity

#: Path components whose files model the untrusted side of the system.
UNTRUSTED_PARTS = frozenset({"cloud", "attacks", "examples", "benchmarks"})

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*\s,]+)\]")


def zone_for(display_path: str) -> str:
    """Classify a file as ``trusted`` or ``untrusted`` by its path."""
    parts = Path(display_path).parts
    return "untrusted" if UNTRUSTED_PARTS.intersection(parts) else "trusted"


@dataclass
class SourceModule:
    """One parsed source file handed to every rule."""

    display_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    zone: str

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule=rule.rule_id,
            severity=rule.severity,
            message=message,
            hint=rule.fix_hint if hint is None else hint,
            text=self.line_text(line),
        )


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``requirement`` names the paper requirement (R1–R4, Section IV) the rule
    machine-checks, so the catalog stays traceable to the security argument.
    """

    rule_id: str = "SEC000"
    severity: Severity = Severity.ERROR
    title: str = ""
    requirement: str = ""
    fix_hint: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def catalog_entry(cls) -> dict:
        return {
            "rule": cls.rule_id,
            "severity": cls.severity.value,
            "title": cls.title,
            "requirement": cls.requirement,
        }


class ProjectRule(Rule):
    """A rule that needs the whole-program view (call graph, summaries).

    Project rules run once per analysis over the
    :class:`~repro.analysis.callgraph.Project` instead of once per module;
    they may report findings in any *analyzed* module (never in context
    modules).  The engine attaches the shared taint summaries to the project
    as ``project.summaries`` before any project rule runs.
    """

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())


# --------------------------------------------------------------- AST helpers
def terminal_name(node: ast.AST) -> str:
    """The rightmost identifier of an expression, or ``""``.

    ``state.msk`` → ``msk``; ``wire.encode`` → ``encode``; for a call the
    callee's terminal name; for a constant-string subscript the key itself
    (``fields["tag"]`` → ``tag``).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            return node.slice.value
        return terminal_name(node.value)
    return ""


def is_constant_expr(node: ast.AST) -> bool:
    """True when an expression is fully determined at compile time.

    Covers the ways a constant IV is typically spelled: literals,
    ``b"\\x00" * 12``, concatenations of literals, and tuples of constants.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.BinOp):
        return is_constant_expr(node.left) and is_constant_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return is_constant_expr(node.operand)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(is_constant_expr(item) for item in node.elts)
    if isinstance(node, ast.Call) and terminal_name(node) == "bytes":
        return all(is_constant_expr(arg) for arg in node.args)
    return False


def functions_of(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(scope: ast.AST) -> Iterator[ast.Call]:
    """All calls in a scope, in source order (line, then column)."""
    calls = [node for node in ast.walk(scope) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    yield from calls


# ------------------------------------------------------------------- pragmas
def pragma_lines(lines: list[str]) -> dict[int, set[str]]:
    """Map line number → set of rule ids suppressed on that line.

    A pragma on a pure-comment line also covers the next line, so wide
    statements can keep the justification above the code.
    """
    suppressed: dict[int, set[str]] = {}
    for idx, raw in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(raw)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        suppressed.setdefault(idx, set()).update(rules)
        if raw.lstrip().startswith("#"):
            suppressed.setdefault(idx + 1, set()).update(rules)
    return suppressed


def _is_suppressed(finding: Finding, pragmas: dict[int, set[str]]) -> bool:
    rules = pragmas.get(finding.line, ())
    return finding.rule in rules or "*" in rules


# -------------------------------------------------------------------- engine
#: Directories (relative to cwd) whose files are parsed into the project as
#: *context* — their call and dispatch edges count (many ECALL handlers are
#: driven only from tests), but findings are never reported in them.
DEFAULT_CONTEXT_PATHS = ("tests",)


class AnalysisEngine:
    """Walks files, builds the project, runs every rule, filters pragmas.

    ``apply_pragmas=False`` disables ``# repro: ignore[...]`` suppression —
    the golden-pin test uses it so suppressed findings still count.
    ``context_paths=None`` auto-discovers :data:`DEFAULT_CONTEXT_PATHS`;
    pass an explicit (possibly empty) list to override.
    """

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        apply_pragmas: bool = True,
        context_paths: Iterable[str | Path] | None = None,
    ):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: list[Rule] = list(rules)
        self.apply_pragmas = apply_pragmas
        self.context_paths = context_paths

    # ------------------------------------------------------------- file walk
    def collect_files(self, paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if not any(part.startswith(".") for part in p.parts)
                )
            elif path.suffix == ".py":
                files.append(path)
        return files

    @staticmethod
    def _display(path: Path) -> str:
        try:
            return str(path.resolve().relative_to(Path.cwd()))
        except ValueError:
            return str(path)

    def _load_module(self, path: Path) -> "SourceModule | Finding":
        source = path.read_text(encoding="utf-8")
        return self._parse(source, self._display(path))

    @staticmethod
    def _parse(source: str, display_path: str) -> "SourceModule | Finding":
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            return Finding(
                path=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="PARSE",
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
                text=lines[exc.lineno - 1].strip() if exc.lineno and exc.lineno <= len(lines) else "",
            )
        return SourceModule(
            display_path=display_path,
            source=source,
            lines=lines,
            tree=tree,
            zone=zone_for(display_path),
        )

    def _context_files(self, analyzed: set[Path]) -> list[Path]:
        roots = self.context_paths
        if roots is None:
            roots = [p for p in DEFAULT_CONTEXT_PATHS if Path(p).is_dir()]
        files = self.collect_files(roots)
        return [path for path in files if path.resolve() not in analyzed]

    # -------------------------------------------------------------- analysis
    def analyze_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        files = self.collect_files(paths)
        analyzed_resolved = {path.resolve() for path in files}
        modules: list[SourceModule] = []
        findings: list[Finding] = []
        for path in files:
            loaded = self._load_module(path)
            if isinstance(loaded, Finding):
                findings.append(loaded)
            else:
                modules.append(loaded)
        context: list[SourceModule] = []
        for path in self._context_files(analyzed_resolved):
            try:
                loaded = self._load_module(path)
            except OSError:
                continue
            if isinstance(loaded, SourceModule):
                context.append(loaded)
        findings.extend(self._run(modules, context))
        return sorted(findings)

    def analyze_file(self, path: Path) -> list[Finding]:
        return self.analyze_source(path.read_text(encoding="utf-8"), self._display(path))

    # ---------------------------------------------------------- single file
    def analyze_source(self, source: str, display_path: str) -> list[Finding]:
        """Analyze one source text (the unit-test entry point).

        The single module becomes a one-file project, so interprocedural
        rules see flows between functions defined in the same fixture.
        """
        loaded = self._parse(source, display_path)
        if isinstance(loaded, Finding):
            return [loaded]
        return self._run([loaded], [])

    # ------------------------------------------------------------- rule runs
    def build_project(self, paths: Iterable[str | Path]):
        """The whole-program :class:`~repro.analysis.callgraph.Project` the
        engine would analyze for ``paths`` — public entry for tests and
        tools that need the call graph itself (no rules are run)."""
        from repro.analysis.callgraph import Project

        files = self.collect_files(paths)
        analyzed_resolved = {path.resolve() for path in files}
        modules = [
            loaded
            for loaded in (self._load_module(path) for path in files)
            if isinstance(loaded, SourceModule)
        ]
        context = [
            loaded
            for loaded in (
                self._load_module(path)
                for path in self._context_files(analyzed_resolved)
            )
            if isinstance(loaded, SourceModule)
        ]
        return Project(modules, context=context)

    def _run(self, modules: list[SourceModule], context: list[SourceModule]) -> list[Finding]:
        from repro.analysis.callgraph import Project
        from repro.analysis.dataflow import compute_summaries

        project = Project(modules, context=context)
        project.summaries = compute_summaries(project)

        raw: list[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(project))
            else:
                for module in modules:
                    raw.extend(rule.check(module))

        if not self.apply_pragmas:
            return sorted(set(raw))
        pragmas_by_path = {
            module.display_path: pragma_lines(module.lines) for module in modules
        }
        kept = {
            finding
            for finding in raw
            if not _is_suppressed(finding, pragmas_by_path.get(finding.path, {}))
        }
        return sorted(kept)
