"""Rule engine: file walking, AST parsing, pragma suppression, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` only).  Each rule
receives a :class:`SourceModule` — the parsed tree plus a *trust-zone*
classification derived from the file's path — and yields findings.  Code
under ``cloud/``, ``attacks/``, ``examples/`` and ``benchmarks/`` is
**untrusted** (it models the adversary-controlled host side of the paper's
system model, Section III); everything else is trusted enclave/infrastructure
code.  Several rules only make sense on one side of that boundary.

Suppression is explicit and reviewable: a ``# repro: ignore[SEC002]``
pragma on the offending line (or on a pure-comment line directly above it)
silences the named rules at that location; the surrounding comment is the
place to justify *why* the flow is safe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity

#: Path components whose files model the untrusted side of the system.
UNTRUSTED_PARTS = frozenset({"cloud", "attacks", "examples", "benchmarks"})

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*\s,]+)\]")


def zone_for(display_path: str) -> str:
    """Classify a file as ``trusted`` or ``untrusted`` by its path."""
    parts = Path(display_path).parts
    return "untrusted" if UNTRUSTED_PARTS.intersection(parts) else "trusted"


@dataclass
class SourceModule:
    """One parsed source file handed to every rule."""

    display_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    zone: str

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule=rule.rule_id,
            severity=rule.severity,
            message=message,
            hint=rule.fix_hint if hint is None else hint,
            text=self.line_text(line),
        )


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``requirement`` names the paper requirement (R1–R4, Section IV) the rule
    machine-checks, so the catalog stays traceable to the security argument.
    """

    rule_id: str = "SEC000"
    severity: Severity = Severity.ERROR
    title: str = ""
    requirement: str = ""
    fix_hint: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def catalog_entry(cls) -> dict:
        return {
            "rule": cls.rule_id,
            "severity": cls.severity.value,
            "title": cls.title,
            "requirement": cls.requirement,
        }


# --------------------------------------------------------------- AST helpers
def terminal_name(node: ast.AST) -> str:
    """The rightmost identifier of an expression, or ``""``.

    ``state.msk`` → ``msk``; ``wire.encode`` → ``encode``; for a call the
    callee's terminal name; for a constant-string subscript the key itself
    (``fields["tag"]`` → ``tag``).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            return node.slice.value
        return terminal_name(node.value)
    return ""


def is_constant_expr(node: ast.AST) -> bool:
    """True when an expression is fully determined at compile time.

    Covers the ways a constant IV is typically spelled: literals,
    ``b"\\x00" * 12``, concatenations of literals, and tuples of constants.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.BinOp):
        return is_constant_expr(node.left) and is_constant_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return is_constant_expr(node.operand)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(is_constant_expr(item) for item in node.elts)
    if isinstance(node, ast.Call) and terminal_name(node) == "bytes":
        return all(is_constant_expr(arg) for arg in node.args)
    return False


def functions_of(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(scope: ast.AST) -> Iterator[ast.Call]:
    """All calls in a scope, in source order (line, then column)."""
    calls = [node for node in ast.walk(scope) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    yield from calls


# ------------------------------------------------------------------- pragmas
def pragma_lines(lines: list[str]) -> dict[int, set[str]]:
    """Map line number → set of rule ids suppressed on that line.

    A pragma on a pure-comment line also covers the next line, so wide
    statements can keep the justification above the code.
    """
    suppressed: dict[int, set[str]] = {}
    for idx, raw in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(raw)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        suppressed.setdefault(idx, set()).update(rules)
        if raw.lstrip().startswith("#"):
            suppressed.setdefault(idx + 1, set()).update(rules)
    return suppressed


def _is_suppressed(finding: Finding, pragmas: dict[int, set[str]]) -> bool:
    rules = pragmas.get(finding.line, ())
    return finding.rule in rules or "*" in rules


# -------------------------------------------------------------------- engine
class AnalysisEngine:
    """Walks files, runs every rule, filters pragma-suppressed findings."""

    def __init__(self, rules: Iterable[Rule] | None = None):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: list[Rule] = list(rules)

    # ------------------------------------------------------------- file walk
    def collect_files(self, paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if not any(part.startswith(".") for part in p.parts)
                )
            elif path.suffix == ".py":
                files.append(path)
        return files

    def analyze_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for path in self.collect_files(paths):
            findings.extend(self.analyze_file(path))
        return sorted(findings)

    def analyze_file(self, path: Path) -> list[Finding]:
        try:
            display = str(path.resolve().relative_to(Path.cwd()))
        except ValueError:
            display = str(path)
        return self.analyze_source(path.read_text(encoding="utf-8"), display)

    # ---------------------------------------------------------- single file
    def analyze_source(self, source: str, display_path: str) -> list[Finding]:
        """Analyze one source text (the unit-test entry point)."""
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=display_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="PARSE",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                    text=lines[exc.lineno - 1].strip() if exc.lineno and exc.lineno <= len(lines) else "",
                )
            ]
        module = SourceModule(
            display_path=display_path,
            source=source,
            lines=lines,
            tree=tree,
            zone=zone_for(display_path),
        )
        pragmas = pragma_lines(lines)
        findings = {
            finding
            for rule in self.rules
            for finding in rule.check(module)
            if not _is_suppressed(finding, pragmas)
        }
        return sorted(findings)
