"""SEC006 — Migration Library lifecycles may only follow the legal edges.

``core/migration_library.py`` declares the library's protocol: the enclave
calls ``migration_init`` exactly once per load (``InitState`` selects the
NEW / RESTORE / MIGRATE entry edge), may then seal and operate counters, and
after ``migration_start`` the library is **frozen** — only a start retry is
legal, never another seal or counter operation (Requirement R3: a migrated
source must be unable to keep operating).  The statically-checked machine::

    UNINIT --migration_init--> READY --migration_start--> FROZEN
    READY  --seal/counter op-> READY
    FROZEN --migration_start-> FROZEN        (Section V-D retry)

Flagged, for a ``MigrationLibrary(...)`` instance constructed in the same
function (cross-function lifecycles are runtime-checked by the library
itself):

* any operation or ``migration_start`` before ``migration_init``,
* a second ``migration_init`` on the same instance,
* seal/counter operations after ``migration_start`` (the frozen state),
* ``InitState.<member>`` references that are not declared by the enum, and
  ``migration_init(None, InitState.RESTORE, ...)`` — RESTORE requires the
  sealed Table II buffer.

The legal ``InitState`` members are read from the library itself, so this
rule can never drift from the source of truth.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule, terminal_name
from repro.analysis.findings import Finding

_OPS = frozenset(
    {
        "seal_migratable_data",
        "unseal_migratable_data",
        "create_migratable_counter",
        "destroy_migratable_counter",
        "increment_migratable_counter",
        "read_migratable_counter",
    }
)

#: The machine above, as (state, event) -> next state; anything absent is a
#: violation.  Events are "migration_init", "migration_start", or "op".
_EDGES = {
    ("UNINIT", "migration_init"): "READY",
    ("READY", "op"): "READY",
    ("READY", "migration_start"): "FROZEN",
    ("FROZEN", "migration_start"): "FROZEN",
}


def _init_state_members() -> frozenset[str]:
    """The declared InitState members, read from the library itself."""
    try:
        from repro.core.migration_library import InitState

        return frozenset(InitState.__members__)
    except Exception:  # pragma: no cover - analysis of a detached tree
        return frozenset({"NEW", "RESTORE", "MIGRATE"})


class ProtocolStateRule(Rule):
    rule_id = "SEC006"
    title = "MigrationLibrary lifecycle must follow its declared state machine"
    requirement = "R3"
    fix_hint = (
        "order calls as migration_init -> operations -> migration_start; "
        "after start the library is frozen and only a start retry is legal"
    )

    def __init__(self) -> None:
        self._members = _init_state_members()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_init_state_refs(module)
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_lifecycle(module, func)

    # ------------------------------------------------- InitState references
    def _check_init_state_refs(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            member = None
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "InitState"
                and not node.attr.startswith("__")
            ):
                member = node.attr
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "InitState"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                member = node.slice.value
            if member is not None and member not in self._members:
                yield module.finding(
                    self,
                    node,
                    f"InitState.{member} is not a declared init state "
                    f"(legal: {', '.join(sorted(self._members))})",
                )

    # ------------------------------------------------- lifecycle per function
    def _check_lifecycle(
        self, module: SourceModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        constructed: set[str] = set()
        events: list[tuple[int, str, str, ast.Call]] = []  # line, name, event, node
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if terminal_name(node.value.func) == "MigrationLibrary":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            constructed.add(target.id)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if not isinstance(receiver, ast.Name):
                    continue
                method = node.func.attr
                if method in ("migration_init", "migration_start"):
                    events.append((node.lineno, receiver.id, method, node))
                elif method in _OPS:
                    events.append((node.lineno, receiver.id, "op", node))
        if not constructed:
            return
        events.sort(key=lambda item: item[0])
        state: dict[str, str] = {name: "UNINIT" for name in constructed}
        for _, name, event, node in events:
            if name not in state:
                continue
            if event == "migration_init":
                yield from self._check_restore_buffer(module, node)
            next_state = _EDGES.get((state[name], event))
            if next_state is None:
                yield module.finding(
                    self,
                    node,
                    f"illegal transition: {event.replace('op', 'library operation')} "
                    f"on {name!r} in state {state[name]} (legal edges: "
                    "UNINIT-init->READY, READY-op->READY, "
                    "READY-start->FROZEN, FROZEN-start->FROZEN)",
                )
                continue  # leave the state unchanged; later calls re-judge it
            state[name] = next_state

    def _check_restore_buffer(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Finding]:
        args = list(call.args)
        if len(args) < 2:
            return
        buffer_arg, init_arg = args[0], args[1]
        is_restore = (
            isinstance(init_arg, ast.Attribute)
            and isinstance(init_arg.value, ast.Name)
            and init_arg.value.id == "InitState"
            and init_arg.attr == "RESTORE"
        )
        if (
            is_restore
            and isinstance(buffer_arg, ast.Constant)
            and buffer_arg.value is None
        ):
            yield module.finding(
                self,
                call,
                "migration_init(None, InitState.RESTORE, ...) — RESTORE "
                "requires the sealed Table II buffer from the previous run",
            )
