"""The rule catalog.

Each rule lives in its own module; :func:`default_rules` instantiates the
catalog in rule-id order.  Adding a rule = adding a module here and listing
it below — the engine, CLI, baseline, and tests pick it up automatically.
"""

from __future__ import annotations

from repro.analysis.rules.sec001_secret_flow import SecretFlowRule
from repro.analysis.rules.sec002_boundary import EnclaveBoundaryRule
from repro.analysis.rules.sec003_nonce import NonceHygieneRule
from repro.analysis.rules.sec004_consttime import ConstantTimeRule
from repro.analysis.rules.sec005_counter import CounterDisciplineRule
from repro.analysis.rules.sec006_protocol import ProtocolStateRule
from repro.analysis.rules.sec007_durability import DurableWriteRule

ALL_RULE_CLASSES = (
    SecretFlowRule,
    EnclaveBoundaryRule,
    NonceHygieneRule,
    ConstantTimeRule,
    CounterDisciplineRule,
    ProtocolStateRule,
    DurableWriteRule,
)


def default_rules():
    """Fresh instances of every registered rule, in rule-id order."""
    return [cls() for cls in ALL_RULE_CLASSES]


__all__ = [
    "ALL_RULE_CLASSES",
    "default_rules",
    "SecretFlowRule",
    "EnclaveBoundaryRule",
    "NonceHygieneRule",
    "ConstantTimeRule",
    "CounterDisciplineRule",
    "ProtocolStateRule",
    "DurableWriteRule",
]
