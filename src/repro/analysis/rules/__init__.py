"""The rule catalog.

Each rule lives in its own module; :func:`default_rules` instantiates the
catalog in rule-id order.  Adding a rule = adding a module here and listing
it below — the engine, CLI, baseline, and tests pick it up automatically.
SEC001, SEC003, and SEC008-SEC010 are :class:`~repro.analysis.engine.
ProjectRule` subclasses running on the whole-program call graph and taint
summaries; the rest are per-module pattern rules.
"""

from __future__ import annotations

from repro.analysis.rules.sec001_secret_flow import SecretFlowRule
from repro.analysis.rules.sec002_boundary import EnclaveBoundaryRule
from repro.analysis.rules.sec003_nonce import NonceHygieneRule
from repro.analysis.rules.sec004_consttime import ConstantTimeRule
from repro.analysis.rules.sec005_counter import CounterDisciplineRule
from repro.analysis.rules.sec006_protocol import ProtocolStateRule
from repro.analysis.rules.sec007_durability import DurableWriteRule
from repro.analysis.rules.sec008_taint_return import TaintedReturnRule
from repro.analysis.rules.sec009_lifecycle import CrossFunctionLifecycleRule
from repro.analysis.rules.sec010_reachability import ReachabilityAuditRule

ALL_RULE_CLASSES = (
    SecretFlowRule,
    EnclaveBoundaryRule,
    NonceHygieneRule,
    ConstantTimeRule,
    CounterDisciplineRule,
    ProtocolStateRule,
    DurableWriteRule,
    TaintedReturnRule,
    CrossFunctionLifecycleRule,
    ReachabilityAuditRule,
)


def default_rules():
    """Fresh instances of every registered rule, in rule-id order."""
    return [cls() for cls in ALL_RULE_CLASSES]


__all__ = [
    "ALL_RULE_CLASSES",
    "default_rules",
    "SecretFlowRule",
    "EnclaveBoundaryRule",
    "NonceHygieneRule",
    "ConstantTimeRule",
    "CounterDisciplineRule",
    "ProtocolStateRule",
    "DurableWriteRule",
    "TaintedReturnRule",
    "CrossFunctionLifecycleRule",
    "ReachabilityAuditRule",
]
