"""SEC004 — MAC/tag/digest comparisons must be constant-time.

A byte-wise ``==`` on authenticator values returns as soon as the first
byte differs, so the time it takes leaks how much of a forged tag was
correct — the classic remote-timing oracle against MAC verification.  The
repo provides :func:`repro.crypto.bytesutil.constant_time_equal` (backed by
``hmac.compare_digest``) and every GCM/CMAC/report verification must go
through it.

Flagged: ``==`` / ``!=`` where either operand's terminal name looks like an
authenticator — ``mac``, ``tag``, ``digest``, ``hmac``, ``cmac``,
``pseudonym``/``nym`` (EPID revocation hashes), ``challenge`` (Schnorr) —
including constant-string subscripts (``fields["tag"]``).

Deliberately *not* flagged: comparisons of public identity measurements
(``mrenclave``/``mrsigner``).  Those are policy checks over values both
sides already know; timing reveals nothing secret.  Length checks
(``len(tag) != 16``) and comparisons against integer literals are skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule, terminal_name
from repro.analysis.findings import Finding

_AUTH_RE = re.compile(
    r"(^|_)(mac|tag|digest|hmac|cmac|nym|pseudonym|challenge)(_|$|s$)",
    re.IGNORECASE,
)


def _is_exempt(node: ast.AST) -> bool:
    if isinstance(node, ast.Call) and terminal_name(node.func) == "len":
        return True
    if isinstance(node, ast.Constant) and not isinstance(node.value, (bytes, str)):
        return True  # ints, None, bools — length/sentinel checks
    return False


def _auth_name(node: ast.AST) -> str:
    name = terminal_name(node)
    return name if name and _AUTH_RE.search(name) else ""


class ConstantTimeRule(Rule):
    rule_id = "SEC004"
    title = "Authenticator comparisons must use constant_time_equal"
    requirement = "R1"
    fix_hint = (
        "compare with repro.crypto.bytesutil.constant_time_equal(a, b) "
        "(hmac.compare_digest) instead of == / !="
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            ops = node.ops
            for index, op in enumerate(ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_exempt(left) or _is_exempt(right):
                    continue
                name = _auth_name(left) or _auth_name(right)
                if not name:
                    continue
                yield module.finding(
                    self,
                    node,
                    f"{name!r} compared with == / != — early-exit comparison "
                    "of an authenticator leaks a timing oracle",
                )
