"""SEC010 — audit the attack surface the call graph actually exposes.

The enclave programming model promises that execution enters trusted code
*only* through declared ``@ecall`` entry points (``sgx/enclave.py`` enforces
it at runtime).  The static mirror of that promise is a reachability
question over the project call graph, and its two failure modes are both
audit findings rather than outright bugs — hence WARNING severity:

* **Unreachable trusted code**: a trusted-zone function that no ``@ecall``
  entry, constructor, lifecycle hook, or untrusted/context caller can reach.
  Dead trusted code still gets measured into MRENCLAVE and still gets
  reviewed as if it ran; unreachable protocol handlers are how stale
  state-machine arms rot unnoticed.
* **Dead protocol handler**: an ``@ecall``-decorated method whose name never
  appears in any ``Enclave.ecall("name", ...)`` dispatch site anywhere in
  the project (tests and examples included).  An entry point nobody
  dispatches is attack surface with zero legitimate users — exactly what a
  reviewer should be asked about.

Roots for the reachability sweep: every ``@ecall`` method, ``__init__`` /
``on_load`` (run by the loader), every function defined in untrusted or
context modules (the adversary can call whatever it wants on its own side),
every module-level call, and Python's implicit entry points (dunders,
properties — the interpreter calls those without a visible edge).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ProjectRule
from repro.analysis.findings import Finding, Severity

#: Methods the runtime/loader calls implicitly — always roots.
_IMPLICIT_ENTRIES = frozenset({"__init__", "on_load"})

#: Decorators that make a method an implicit entry point for the runtime.
_ENTRY_DECORATORS = frozenset({"property", "cached_property", "staticmethod", "classmethod"})


def _decorator_names(node) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name):
            names.add(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.add(decorator.attr)
        elif isinstance(decorator, ast.Call):
            names.update(_decorator_names_of(decorator.func))
    return names


def _decorator_names_of(node) -> set[str]:
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


class ReachabilityAuditRule(ProjectRule):
    rule_id = "SEC010"
    severity = Severity.WARNING
    title = "Trusted code must be reachable from an ECALL entry; every ECALL must have a dispatcher"
    requirement = "R2"
    fix_hint = (
        "delete the dead code, or wire it to a declared entry point; if it "
        "is a planned handler, say so in a pragma justification"
    )

    def check_project(self, project) -> Iterator[Finding]:
        enclave_fids = {
            fid
            for info in project.enclave_classes()
            for fid in info.methods.values()
        }
        if not enclave_fids:
            return  # no ECALL surface in scope: the audit is meaningless
        roots = self._roots(project)
        reachable = project.reachable_from(roots)
        yield from self._unreachable_trusted(project, reachable, enclave_fids)
        yield from self._dead_handlers(project)

    # ----------------------------------------------------------------- roots
    def _roots(self, project) -> set[str]:
        roots: set[str] = set()
        for fid, fn in project.functions.items():
            if fn.is_ecall or fn.name in _IMPLICIT_ENTRIES:
                roots.add(fid)
            elif fn.is_context or fn.module.zone == "untrusted":
                roots.add(fid)
            elif fn.name.startswith("__") and fn.name.endswith("__"):
                roots.add(fid)  # dunders: the interpreter is the caller
            elif _ENTRY_DECORATORS & _decorator_names(fn.node):
                roots.add(fid)  # properties etc. have no visible call edge
        # Module-level call sites run at import time.
        for site in project.calls_by_caller.get("", ()):
            roots.update(site.callees)
        return roots

    # ---------------------------------------------------- unreachable trusted
    def _unreachable_trusted(
        self, project, reachable: set[str], enclave_fids: set[str]
    ) -> Iterator[Finding]:
        """Audit the in-enclave surface: methods of classes that declare at
        least one ``@ecall`` (that is what gets measured and runs inside)."""
        for fid in sorted(enclave_fids):
            fn = project.function_at(fid)
            if fn is None or fid in reachable or fn.is_context:
                continue
            if fn.module.zone != "trusted":
                continue
            if fn.module.display_path in project.context_paths:
                continue
            if self._overrides_reachable(project, fn, reachable):
                continue  # virtual dispatch: the base hook is what is called
            module = fn.module
            line = fn.node.lineno
            yield Finding(
                path=module.display_path,
                line=line,
                col=fn.node.col_offset + 1,
                rule=self.rule_id,
                severity=self.severity,
                message=(
                    f"trusted method {fn.qualname!r} is unreachable from "
                    "every ECALL entry, constructor, hook, and untrusted "
                    "caller — dead trusted code is unaudited attack surface"
                ),
                hint=self.fix_hint,
                text=module.line_text(line),
            )

    @staticmethod
    def _overrides_reachable(project, fn, reachable: set[str]) -> bool:
        """An override of a reachable base-class method is itself reachable:
        ``self.get_memory_image()`` in the Gu base class dispatches to
        whichever subclass the enclave actually is."""
        if fn.class_name is None:
            return False
        for info in project.mro(fn.class_name):
            other = info.methods.get(fn.name)
            if other is not None and other != fn.fid and other in reachable:
                return True
        return False

    # --------------------------------------------------------- dead handlers
    def _dead_handlers(self, project) -> Iterator[Finding]:
        for name, fids in sorted(project.ecall_methods.items()):
            if name in project.dispatch_sites:
                continue
            for fid in fids:
                fn = project.function_at(fid)
                if fn is None or fn.is_context:
                    continue
                if fn.module.display_path in project.context_paths:
                    continue
                module = fn.module
                line = fn.node.lineno
                yield Finding(
                    path=module.display_path,
                    line=line,
                    col=fn.node.col_offset + 1,
                    rule=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"ECALL handler {fn.qualname!r} is never dispatched: "
                        f'no Enclave.ecall("{name}", ...) site exists anywhere '
                        "in the project — entry points without users are "
                        "unreviewed attack surface"
                    ),
                    hint=self.fix_hint,
                    text=module.line_text(line),
                )
