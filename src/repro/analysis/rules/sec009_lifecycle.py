"""SEC009 — the migration lifecycle must hold across function boundaries.

SEC006 checks the Migration Library state machine *inside one function*;
the cloning-attack literature shows real protocol bugs hide exactly one
call deeper — a helper that calls ``migration_start`` on a library the
caller never initialized, or a snapshot helper that seals state before the
caller's counter increment.  This rule abstract-interprets the same machine
over *inlined call paths*: every analyzed function's lifecycle events are
collected together with the events of the project functions it calls
(depth-limited, cycle-guarded), with receivers unified across the call —
``helper(lib)`` operating on its parameter is understood to operate on the
caller's ``lib``, and ``app.do_start()`` touching ``self.miglib`` is
understood to touch ``app.miglib``.  ``Enclave.ecall("migration_start")``
string dispatch follows the call-graph's dispatch edge into the ``@ecall``
method.  (The ME-side ``stage_out``/``flush_staged``/DONE commands are
driven by ``migration_start(defer_transfer=...)`` / ``confirm_migration``
and are covered through those edges.)

The machine (states per receiver)::

    UNINIT --migration_init--> READY --migration_start--> FROZEN
    READY  --op/confirm------> READY
    FROZEN --migration_start-> FROZEN            (Section V-D retry)

Flagged — only for *definitely known* states, and only when the offending
path spans at least two functions (single-function cases are SEC006's and
SEC005's, so nothing is reported twice):

* an operation or ``migration_start`` on a receiver that is still UNINIT
  (constructed but never initialized on this path),
* a second ``migration_init``, or any operation after the freeze,
* sealed state *released* by one function before the counter *increment*
  that happens later in another (the cross-function Section III rollback
  window SEC005 cannot see).

Unknown states stay silent: a receiver that merely arrives as a parameter
has an unknown history, and the library's own runtime checks guard it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.engine import ProjectRule, terminal_name
from repro.analysis.findings import Finding, TraceStep

_INLINE_DEPTH = 3

_INITS = frozenset({"migration_init"})
_STARTS = frozenset({"migration_start"})
_CONFIRMS = frozenset({"confirm_migration"})
_OPS = frozenset(
    {
        "seal_migratable_data",
        "unseal_migratable_data",
        "create_migratable_counter",
        "destroy_migratable_counter",
        "increment_migratable_counter",
        "read_migratable_counter",
    }
)
_RELEASES = frozenset({"seal_data", "seal_migratable_data"})
_INCREMENTS = frozenset({"increment_migratable_counter", "increment_monotonic_counter"})

_EDGES = {
    ("UNINIT", "init"): "READY",
    ("READY", "op"): "READY",
    ("READY", "confirm"): "READY",
    ("READY", "start"): "FROZEN",
    ("FROZEN", "start"): "FROZEN",
}

#: What an event does to an UNKNOWN-state receiver (no violation, but the
#: *result* state is known afterwards).
_FROM_UNKNOWN = {"init": "READY", "start": "FROZEN"}


def _event_kind(method: str) -> str | None:
    if method in _INITS:
        return "init"
    if method in _STARTS:
        return "start"
    if method in _CONFIRMS:
        return "confirm"
    if method in _OPS:
        return "op"
    return None


@dataclass
class Event:
    kind: str  # new | kill | init | start | confirm | op | release | increment
    key: str | None  # receiver key ("" for key-less release/increment events)
    node: ast.AST  # the event's own AST node (in fid's module)
    fid: str  # function the event physically occurs in
    site_node: ast.AST | None = None  # caller-level call that inlined it
    site_fid: str = ""
    maybe: bool = False  # inside a try body: may not have happened


def _key_of(expr: ast.AST) -> str | None:
    """A stable receiver key: ``lib`` → ``"lib"``, ``self.miglib`` →
    ``"self.miglib"``, ``app.lib`` → ``"app.lib"``; anything else → None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _key_of(expr.value)
        return f"{base}.{expr.attr}" if base is not None else None
    return None


class CrossFunctionLifecycleRule(ProjectRule):
    rule_id = "SEC009"
    title = "Migration lifecycle order must hold across all call paths"
    requirement = "R3"
    fix_hint = (
        "drive the library as migration_init -> operations -> "
        "migration_start on every call path, and increment the counter "
        "before any helper releases sealed state"
    )

    def check_project(self, project) -> Iterator[Finding]:
        self._project = project
        for fn in project.functions.values():
            if fn.is_context:
                continue
            if fn.module.display_path in project.context_paths:
                continue
            events = self._events_for(fn, depth=0, visited=frozenset())
            if not events:
                continue
            yield from self._simulate(fn, events)
            yield from self._check_release_order(fn, events)

    # ------------------------------------------------------- event extraction
    def _events_for(self, fn, depth: int, visited: frozenset) -> list[Event]:
        if fn.fid in visited:
            return []
        visited = visited | {fn.fid}
        project = self._project
        events: list[Event] = []
        items: list[tuple[int, int, ast.AST]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.Call)):
                items.append((node.lineno, getattr(node, "col_offset", 0), node))
        items.sort(key=lambda item: (item[0], item[1]))
        try_lines = self._try_body_lines(fn)
        seen_calls: set[int] = set()
        for _, _, node in items:
            if isinstance(node, ast.Assign):
                # `x = f(x)`: f's events happen *before* the rebinding of x,
                # so drain the RHS calls first, then emit the kill/new.
                for inner in ast.walk(node.value):
                    if isinstance(inner, ast.Call) and id(inner) not in seen_calls:
                        seen_calls.add(id(inner))
                        events.extend(
                            self._call_events(fn, inner, depth, visited, try_lines)
                        )
                events.extend(self._assign_events(fn, node))
                continue
            if id(node) in seen_calls:
                continue
            seen_calls.add(id(node))
            events.extend(self._call_events(fn, node, depth, visited, try_lines))
        return events

    @staticmethod
    def _try_body_lines(fn) -> list[tuple[int, int]]:
        """Line ranges of ``try`` bodies: a lifecycle call there *may* have
        raised, so the state it would establish is not definite."""
        ranges = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Try) and node.body:
                last = node.body[-1]
                ranges.append((node.body[0].lineno, last.end_lineno or last.lineno))
        return ranges

    def _assign_events(self, fn, node: ast.Assign) -> list[Event]:
        is_construction = (
            isinstance(node.value, ast.Call)
            and terminal_name(node.value.func) == "MigrationLibrary"
        )
        events = []
        for target in node.targets:
            key = _key_of(target)
            if key is None:
                continue
            events.append(
                Event(kind="new" if is_construction else "kill", key=key, node=node, fid=fn.fid)
            )
        return events

    def _call_events(
        self, fn, call: ast.Call, depth: int, visited: frozenset, try_lines=()
    ) -> list[Event]:
        project = self._project
        events: list[Event] = []
        method = None
        receiver_key = None
        dispatch = False
        if isinstance(call.func, ast.Attribute):
            if (
                call.func.attr == "ecall"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                method = call.args[0].value
                receiver_key = _key_of(call.func.value)
                dispatch = True
            else:
                method = call.func.attr
                receiver_key = _key_of(call.func.value)
        elif isinstance(call.func, ast.Name):
            method = call.func.id

        maybe = any(lo <= call.lineno <= hi for lo, hi in try_lines)
        is_api_call = False
        if method is not None and receiver_key is not None:
            kind = _event_kind(method)
            if kind is not None:
                is_api_call = True
                events.append(
                    Event(kind=kind, key=receiver_key, node=call, fid=fn.fid, maybe=maybe)
                )
            if method in _RELEASES:
                is_api_call = True
                events.append(Event(kind="release", key="", node=call, fid=fn.fid))
            if method in _INCREMENTS:
                is_api_call = True
                events.append(Event(kind="increment", key="", node=call, fid=fn.fid))

        # Inline the callee's events with receivers mapped into our frame.
        # A direct library-API call is atomic — its event above *is* its
        # model; inlining MigrationLibrary's implementation would re-count
        # the library's internal `_persist` against every caller.  The
        # ECALL dispatch edge still inlines: the event there is on the
        # *enclave* key and the wrapper's `self.miglib.*` is the real op.
        if is_api_call and not dispatch:
            return events
        if depth >= _INLINE_DEPTH:
            return events
        sites = [
            site
            for site in project.calls_by_caller.get(fn.fid, ())
            if site.node is call and site.callees
        ]
        for site in sites:
            callee = project.function_at(site.callees[0])
            if callee is None or callee.fid in visited:
                continue
            sub = self._events_for(callee, depth + 1, visited)
            if not sub:
                continue
            mapping = self._frame_mapping(fn, call, callee, dispatch)
            for event in sub:
                mapped = self._map_key(event.key, mapping, callee)
                if mapped is _DROP:
                    continue
                events.append(
                    Event(
                        kind=event.kind,
                        key=mapped,
                        node=event.node,
                        fid=event.fid,
                        # Always re-anchor to *this* frame's call: after the
                        # last mapping the site is a node in the root
                        # function's own module, so path and line agree.
                        site_node=call,
                        site_fid=fn.fid,
                        maybe=event.maybe or maybe,
                    )
                )
        return events

    def _frame_mapping(self, fn, call: ast.Call, callee, dispatch: bool) -> dict:
        """callee-frame key prefix → caller-frame key prefix."""
        mapping: dict[str, str | None] = {}
        params = callee.params
        if callee.class_name is not None and params and params[0] == "self":
            receiver = None
            if isinstance(call.func, ast.Attribute):
                receiver = _key_of(call.func.value)
            mapping["self"] = receiver  # None → unmapped, kept opaque
            params = params[1:]
        args = list(call.args)
        if dispatch:
            args = args[1:]  # args[0] is the ECALL name
        for index, param in enumerate(params):
            if index < len(args):
                mapping[param] = _key_of(args[index])
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                mapping[kw.arg] = _key_of(kw.value)
        return mapping

    def _map_key(self, key: str | None, mapping: dict, callee):
        if key is None:
            return None
        if key == "":
            return ""  # key-less release/increment events pass through
        head, _, rest = key.partition(".")
        if head in mapping:
            target = mapping[head]
            if target is None:
                return _DROP  # receiver not expressible in the caller's frame
            return f"{target}.{rest}" if rest else target
        # Callee-local receiver: its whole lifecycle is judged when the
        # callee is analyzed as a root; re-simulating it here (possibly from
        # several call sites of the same callee) only double-reports.
        return _DROP

    # ------------------------------------------------------------ simulation
    def _simulate(self, fn, events: list[Event]) -> Iterator[Finding]:
        project = self._project
        state: dict[str, str] = {}
        fids_per_key: dict[str, set] = {}
        for event in events:
            if event.key in (None, ""):
                continue
            key = event.key
            fids_per_key.setdefault(key, set()).add(event.fid)
            if event.kind == "new":
                state[key] = "UNINIT"
                continue
            if event.kind == "kill":
                # Rebinding `enclave` invalidates `enclave.miglib` too.
                state[key] = "UNKNOWN"
                prefix = key + "."
                for other in list(state):
                    if other.startswith(prefix):
                        state[other] = "UNKNOWN"
                continue
            current = state.get(key, "UNKNOWN")
            if event.maybe:
                # Inside a try body the call may have raised; whatever state
                # it would establish is not definite.
                state[key] = "UNKNOWN"
                continue
            if current == "UNKNOWN":
                state[key] = _FROM_UNKNOWN.get(event.kind, "UNKNOWN")
                continue
            next_state = _EDGES.get((current, event.kind))
            if next_state is not None:
                state[key] = next_state
                continue
            # Definite violation; only ours if the path is cross-function.
            if len(fids_per_key[key]) < 2:
                continue
            yield self._violation_finding(fn, event, current)
            # Leave the state unchanged; later events are re-judged.

    def _violation_finding(self, fn, event: Event, current: str) -> Finding:
        project = self._project
        inner = project.function_at(event.fid)
        site_node = event.site_node if event.site_node is not None else event.node
        line = getattr(site_node, "lineno", 1)
        trace = []
        if event.site_node is not None and inner is not None:
            inner_line = getattr(event.node, "lineno", 1)
            trace.append(
                TraceStep(
                    path=inner.module.display_path,
                    line=inner_line,
                    text=inner.module.line_text(inner_line),
                    note=f"lifecycle event {event.kind!r} inside {inner.qualname}()",
                )
            )
        trace.append(
            TraceStep(
                path=fn.module.display_path,
                line=line,
                text=fn.module.line_text(line),
                note=f"reached from here with {event.key!r} in state {current}",
            )
        )
        pretty = {"init": "migration_init", "start": "migration_start",
                  "confirm": "confirm_migration", "op": "library operation"}
        return Finding(
            path=fn.module.display_path,
            line=line,
            col=getattr(site_node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=(
                f"illegal {pretty.get(event.kind, event.kind)} on {event.key!r} "
                f"in state {current} on a cross-function path (legal: "
                "UNINIT-init->READY, READY-op->READY, READY-start->FROZEN, "
                "FROZEN-start->FROZEN)"
            ),
            hint=self.fix_hint,
            text=fn.module.line_text(line),
            trace=tuple(trace),
        )

    # ----------------------------------------------- cross-function rollback
    def _check_release_order(self, fn, events: list[Event]) -> Iterator[Finding]:
        # Only the root's *own* increment is judged — a release buried in a
        # helper before it is the cross-function window.  Increments inlined
        # from callees are those callees' transactions, judged there.
        releases = [e for e in events if e.kind == "release"]
        increments = [e for e in events if e.kind == "increment" and e.fid == fn.fid]
        if not releases or not increments:
            return
        first_release = releases[0]
        position = events.index(first_release)
        if any(events.index(e) < position for e in increments):
            return  # an increment precedes the first release: discipline held
        late = increments[0]
        if first_release.fid == late.fid:
            return  # same function: SEC005's finding, not ours
        project = self._project
        release_fn = project.function_at(first_release.fid)
        line = getattr(late.site_node or late.node, "lineno", 1)
        release_line = getattr(first_release.node, "lineno", 1)
        trace = []
        if release_fn is not None:
            trace.append(
                TraceStep(
                    path=release_fn.module.display_path,
                    line=release_line,
                    text=release_fn.module.line_text(release_line),
                    note=f"sealed state released in {release_fn.qualname}()",
                )
            )
        trace.append(
            TraceStep(
                path=fn.module.display_path,
                line=line,
                text=fn.module.line_text(line),
                note="counter incremented only here, after the release",
            )
        )
        yield Finding(
            path=fn.module.display_path,
            line=line,
            col=getattr(late.site_node or late.node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=(
                "sealed state is released (via "
                f"{release_fn.qualname if release_fn else 'helper'}) before "
                "this counter increment — a crash between them leaves a "
                "replayable stale blob (cross-function Section III rollback)"
            ),
            hint=self.fix_hint,
            text=fn.module.line_text(line),
            trace=tuple(trace),
        )


#: Sentinel for receiver keys that cannot be expressed in the caller frame.
_DROP = object()
