"""SEC007 — migration-critical blobs must be fsynced before the function ends.

The disk fault model (``repro.cloud.storage``) buffers every ``write`` in a
volatile write-back cache: without an explicit ``sync``, a machine crash
silently discards the blob.  For most data that is an availability nit; for
the artifacts recovery depends on — the migration journal, the Migration
Enclave's A/B checkpoints, the sealed Table II library bundle — it reopens
exactly the crash windows the chaos ``--disk`` sweep exists to close: a
journal that never landed cannot name the transaction to resume, and an
unlanded checkpoint strands parked migration data.

Flagged: a ``*.storage.write(path, ...)`` call whose path argument names a
migration-critical artifact (``migration_txn``, ``me_checkpoint``,
``miglib_state``, or the constants that hold those paths) with no
``sync``/``store``/``store_atomic`` call later in the same function.  The
durable wrappers (``Application.store`` / ``store_atomic`` and
``MigrationJournal.write``) are the sanctioned spelling — this rule catches
the raw-write shortcut that skips them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule, calls_in, functions_of, terminal_name
from repro.analysis.findings import Finding

#: Substrings (of literals) and identifiers (of path expressions) that mark
#: a blob as migration-critical.  Matching either way keeps the rule robust
#: to both ``storage.write("app/migration_txn", ...)`` and
#: ``storage.write(LIBRARY_STATE_PATH, ...)`` spellings.
_CRITICAL_TOKENS = ("migration_txn", "me_checkpoint", "miglib_state")
_CRITICAL_NAMES = frozenset(
    {
        "MIGRATION_JOURNAL_PATH",
        "ME_CHECKPOINT_PATH",
        "ME_CHECKPOINT_SLOTS",
        "ME_CHECKPOINT_POINTER",
        "LIBRARY_STATE_PATH",
    }
)
_DURABLE_FOLLOWUPS = frozenset({"sync", "store", "store_atomic"})


def _is_storage_write(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "write"
        and terminal_name(func.value) == "storage"
    )


def _path_is_critical(arg: ast.AST) -> bool:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return any(token in arg.value for token in _CRITICAL_TOKENS)
    text = ast.unparse(arg)
    if any(token in text for token in _CRITICAL_TOKENS):
        return True
    names = {node.id for node in ast.walk(arg) if isinstance(node, ast.Name)}
    names.update(
        node.attr for node in ast.walk(arg) if isinstance(node, ast.Attribute)
    )
    return bool(_CRITICAL_NAMES.intersection(names))


class DurableWriteRule(Rule):
    rule_id = "SEC007"
    title = "Migration-critical storage writes must be followed by sync"
    requirement = "R4"
    fix_hint = (
        "follow the storage.write with storage.sync(path) — or use the "
        "durable wrappers (Application.store/store_atomic, "
        "MigrationJournal.write) which fsync for you"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in functions_of(module.tree):
            writes: list[tuple[int, ast.Call]] = []
            followups: list[int] = []
            for call in calls_in(func):
                if _is_storage_write(call) and call.args and _path_is_critical(call.args[0]):
                    writes.append((call.lineno, call))
                elif terminal_name(call.func) in _DURABLE_FOLLOWUPS:
                    followups.append(call.lineno)
            for line, call in writes:
                if not any(followup > line for followup in followups):
                    yield module.finding(
                        self,
                        call,
                        f"migration-critical blob written at line {line} with "
                        "no later sync in this function — a crash silently "
                        "drops it from the write-back buffer, and recovery "
                        "then cannot see the journal/checkpoint it needs",
                    )
