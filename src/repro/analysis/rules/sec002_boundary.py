"""SEC002 — untrusted code may not reach into enclave memory.

The SGX programming model (Section II-A) is the repo's load-bearing fiction:
host code enters an enclave *only* through declared ECALLs
(``Enclave.ecall("name", ...)``) and the enclave's Python instance state —
``Enclave.trusted`` — stands in for EPC-protected memory.  A single
``enclave.trusted.balance = 0`` in a cloud or example module silently breaks
every isolation claim the simulation makes.

This rule fires in **untrusted** modules (``cloud/``, ``attacks/``,
``examples/``, ``benchmarks/`` — the trust-zone map in the engine) on any
access to a ``.trusted`` attribute, read or write — including through a
one-step local alias (``e = enclave; e.trusted...``: the attribute match is
receiver-agnostic, so aliasing does not launder the access) — and on the
reflective spellings ``getattr(x, "trusted")`` / ``setattr(x, "trusted",
...)`` / ``delattr(x, "trusted")`` that dodge attribute syntax entirely.
The two legitimate exceptions in the tree — the EINIT-analogue loader that
*creates* the trusted instance, and a test observer documented as such —
carry ``# repro: ignore[SEC002]`` pragmas with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule
from repro.analysis.findings import Finding

_REFLECTIVE = frozenset({"getattr", "setattr", "delattr"})


def _reflective_trusted_access(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Name)
        and node.func.id in _REFLECTIVE
        and len(node.args) >= 2
        and isinstance(node.args[1], ast.Constant)
        and node.args[1].value == "trusted"
    )


class EnclaveBoundaryRule(Rule):
    rule_id = "SEC002"
    title = "Untrusted modules must use Enclave.ecall, never .trusted state"
    requirement = "R1"
    fix_hint = (
        "route the access through a declared ECALL (enclave.ecall(name, ...)); "
        "if this site is enclave-loading infrastructure, suppress with a "
        "justified '# repro: ignore[SEC002]' pragma"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.zone != "untrusted":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "trusted":
                yield module.finding(
                    self,
                    node,
                    "untrusted code touches enclave-protected memory via "
                    "'.trusted' instead of entering through an ECALL",
                )
            elif isinstance(node, ast.Call) and _reflective_trusted_access(node):
                yield module.finding(
                    self,
                    node,
                    f"untrusted code touches enclave-protected memory via "
                    f"{node.func.id}(..., 'trusted') instead of entering "
                    "through an ECALL",
                )
