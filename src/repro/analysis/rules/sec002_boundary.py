"""SEC002 — untrusted code may not reach into enclave memory.

The SGX programming model (Section II-A) is the repo's load-bearing fiction:
host code enters an enclave *only* through declared ECALLs
(``Enclave.ecall("name", ...)``) and the enclave's Python instance state —
``Enclave.trusted`` — stands in for EPC-protected memory.  A single
``enclave.trusted.balance = 0`` in a cloud or example module silently breaks
every isolation claim the simulation makes.

This rule fires in **untrusted** modules (``cloud/``, ``attacks/``,
``examples/``, ``benchmarks/`` — the trust-zone map in the engine) on any
access to a ``.trusted`` attribute, read or write.  The two legitimate
exceptions in the tree — the EINIT-analogue loader that *creates* the
trusted instance, and a test observer documented as such — carry
``# repro: ignore[SEC002]`` pragmas with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule
from repro.analysis.findings import Finding


class EnclaveBoundaryRule(Rule):
    rule_id = "SEC002"
    title = "Untrusted modules must use Enclave.ecall, never .trusted state"
    requirement = "R1"
    fix_hint = (
        "route the access through a declared ECALL (enclave.ecall(name, ...)); "
        "if this site is enclave-loading infrastructure, suppress with a "
        "justified '# repro: ignore[SEC002]' pragma"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.zone != "untrusted":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "trusted":
                yield module.finding(
                    self,
                    node,
                    "untrusted code touches enclave-protected memory via "
                    "'.trusted' instead of entering through an ECALL",
                )
