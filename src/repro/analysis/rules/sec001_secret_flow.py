"""SEC001 — key material must not flow to logging or untrusted sinks.

Requirement R1 (Section IV): migrated and persisted state — above all the
Migration Sealing Key — must never be disclosed.  The type system cannot see
an MSK ride out of the enclave inside a ``print`` or an OCALL argument, so
this rule flags any expression mentioning a secret-named identifier that
reaches one of the sinks:

* ``print(...)`` / ``repr(...)``,
* a ``logging``-style call (``log.info``, ``logger.error``, …),
* an OCALL argument position (``sdk.ocall("name", <here>)``) — everything in
  an OCALL crosses the enclave boundary into the untrusted host.

Secret names are ``msk``, anything containing ``secret`` or ``fuse``,
``private``-suffixed names, and ``*_key`` names that are not explicitly
public (``public_key`` and friends are fine to show).  A secret wrapped in a
sealing/encryption call (``seal_data(msk)``, ``encrypt(..., key=...)``) is
protected and not flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Rule, SourceModule, terminal_name
from repro.analysis.findings import Finding

_SECRET_RE = re.compile(
    r"""
    (^|_)msk($|_)          # the Migration Sealing Key itself
    | secret               # member_secret, fuse secrets, ...
    | fuse                 # CPU fuse material
    | (^|_)private($|_)    # schnorr/DH private halves
    | (^|_)priv($|_)
    """,
    re.VERBOSE | re.IGNORECASE,
)

# ``*_key`` is secret unless the name marks it public.
_KEY_RE = re.compile(r"(^|_)key$", re.IGNORECASE)
_PUBLIC_RE = re.compile(r"public|pub($|_)|verify", re.IGNORECASE)

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
_PLAIN_SINKS = frozenset({"print", "repr"})

#: Callees that transform a secret into something safe to release.
_PROTECTIVE_RE = re.compile(
    r"seal|encrypt|mac|hash|digest|derive|hkdf|kdf|pseudonym|len", re.IGNORECASE
)


def is_secret_name(name: str) -> bool:
    if not name:
        return False
    if _PUBLIC_RE.search(name):
        return False
    return bool(_SECRET_RE.search(name) or _KEY_RE.search(name))


def _secret_mentions(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, name) for secret identifiers reachable in ``node``.

    Descends through the expression but stops at protective calls — a sealed
    or hashed secret no longer leaks — and never inspects a call's *callee*
    (``kdc.request_key(...)`` names an operation, not a value).
    """
    if isinstance(node, ast.Call):
        if _PROTECTIVE_RE.search(terminal_name(node.func) or ""):
            return
        for arg in node.args:
            yield from _secret_mentions(arg)
        for kw in node.keywords:
            yield from _secret_mentions(kw.value)
        return
    if isinstance(node, ast.Name):
        if is_secret_name(node.id):
            yield node, node.id
        return
    if isinstance(node, ast.Attribute):
        if is_secret_name(node.attr):
            yield node, node.attr
        yield from _secret_mentions(node.value)
        return
    for child in ast.iter_child_nodes(node):
        yield from _secret_mentions(child)


def _is_log_call(func: ast.AST) -> bool:
    if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
        base = terminal_name(func.value).lower()
        return base in {"logging", "logger", "log"} or base.endswith("logger")
    return False


class SecretFlowRule(Rule):
    rule_id = "SEC001"
    title = "Key material must not reach logging, repr, or OCALL arguments"
    requirement = "R1"
    fix_hint = (
        "seal or encrypt the value before it leaves the enclave "
        "(seal_data / seal_migratable_data / channel.send), or drop it from "
        "the log statement"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            sink_args: list[ast.AST] = []
            kind = ""
            if isinstance(func, ast.Name) and func.id in _PLAIN_SINKS:
                kind, sink_args = func.id, list(node.args) + [k.value for k in node.keywords]
            elif _is_log_call(func):
                kind, sink_args = "logging", list(node.args) + [k.value for k in node.keywords]
            elif isinstance(func, ast.Attribute) and func.attr == "ocall":
                # args[0] is the OCALL name; the payload positions follow.
                kind, sink_args = "OCALL", list(node.args[1:]) + [k.value for k in node.keywords]
            if not kind:
                continue
            for arg in sink_args:
                for _, name in _secret_mentions(arg):
                    yield module.finding(
                        self,
                        node,
                        f"secret {name!r} reaches {kind} unencrypted "
                        f"(key material must never leave the enclave unsealed)",
                    )
