"""SEC001 — key material must not flow to logging or untrusted sinks.

Requirement R1 (Section IV): migrated and persisted state — above all the
Migration Sealing Key — must never be disclosed.  The type system cannot see
an MSK ride out of the enclave inside a ``print`` or an OCALL argument, so
this rule flags any value carrying secret taint that reaches one of the
sinks:

* ``print(...)`` / ``repr(...)``,
* a ``logging``-style call (``log.info``, ``logger.error``, …),
* an OCALL argument position (``sdk.ocall("name", <here>)``) — everything in
  an OCALL crosses the enclave boundary into the untrusted host.

Secret names are ``msk``, anything containing ``secret`` or ``fuse``,
``private``-suffixed names, and ``*_key`` names that are not explicitly
public (``public_key`` and friends are fine to show); the predicates live in
:mod:`repro.analysis.summaries` and are shared with SEC008.

Since PR-6 the rule runs on the shared taint engine
(:mod:`repro.analysis.dataflow`) instead of a local pattern walk: a secret
assigned through locals or *returned by a helper function* still reaches
the sink tainted (with the def→use trace attached for ``--explain``), while
a value that passed a sealing/AEAD/KDF sanitizer — directly or inside a
summarized helper — is clean.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ProjectRule, terminal_name
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.summaries import is_secret_name, param_index

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
_PLAIN_SINKS = frozenset({"print", "repr"})


def _is_log_call(func: ast.AST) -> bool:
    if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
        base = terminal_name(func.value).lower()
        return base in {"logging", "logger", "log"} or base.endswith("logger")
    return False


class SecretFlowRule(ProjectRule):
    rule_id = "SEC001"
    title = "Key material must not reach logging, repr, or OCALL arguments"
    requirement = "R1"
    fix_hint = (
        "seal or encrypt the value before it leaves the enclave "
        "(seal_data / seal_migratable_data / channel.send), or drop it from "
        "the log statement"
    )

    def check_project(self, project) -> Iterator[Finding]:
        from repro.analysis.dataflow import TaintTracker

        summaries = getattr(project, "summaries", {})
        for fn in project.functions.values():
            if fn.is_context or fn.module.display_path in project.context_paths:
                continue
            flow = TaintTracker(project, fn, summaries=summaries).run()
            for event in flow.calls:
                kind, sink_taints = self._sink_taints(event)
                if not kind:
                    continue
                for taints in sink_taints:
                    for taint in sorted(taints, key=lambda t: t.label):
                        if param_index(taint.label) is not None:
                            continue
                        yield self._finding(fn, event.node, taint, kind)

    # ------------------------------------------------------------------ sinks
    def _sink_taints(self, event):
        func = event.node.func
        if isinstance(func, ast.Name) and func.id in _PLAIN_SINKS:
            return func.id, list(event.arg_taints) + list(event.kw_taints.values())
        if _is_log_call(func):
            return "logging", list(event.arg_taints) + list(event.kw_taints.values())
        if isinstance(func, ast.Attribute) and func.attr == "ocall":
            # args[0] is the OCALL name; the payload positions follow.
            return "OCALL", list(event.arg_taints[1:]) + list(event.kw_taints.values())
        return "", []

    def _finding(self, fn, node: ast.Call, taint, kind: str) -> Finding:
        module = fn.module
        line = getattr(node, "lineno", 1)
        sink = TraceStep(
            path=module.display_path,
            line=line,
            text=module.line_text(line),
            note=f"reaches {kind} here",
        )
        return Finding(
            path=module.display_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=(
                f"secret {taint.label!r} reaches {kind} unencrypted "
                f"(key material must never leave the enclave unsealed)"
            ),
            hint=self.fix_hint,
            text=module.line_text(line),
            trace=tuple(taint.steps) + (sink,),
        )
