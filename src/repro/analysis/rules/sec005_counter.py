"""SEC005 — increment the monotonic counter *before* releasing sealed state.

The Section III roll-back attack works because a sealed blob carries a
version that some counter must refute.  The paper's discipline (and the
pattern every app in ``repro.apps`` follows) is::

    version = <increment counter>          # 1. advance freshness first
    payload = <serialize state>
    return <seal>(payload, version)        # 2. only then release the blob

If the seal happens first, the blob that leaves the enclave is bound to a
*stale* counter value: a host that crashes the enclave between the two
steps (or simply keeps the early blob) owns a perfectly valid state the
counter never advanced past — a replayable rollback.

Flagged: within one function that both increments a counter
(``increment_migratable_counter`` / ``increment_monotonic_counter``) and
seals state (``seal_data`` / ``seal_migratable_data``), any seal call that
precedes the first increment.  Functions that only seal (no counter
discipline in scope) are not this rule's business.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, SourceModule, calls_in, functions_of, terminal_name
from repro.analysis.findings import Finding

_INCREMENTS = frozenset({"increment_migratable_counter", "increment_monotonic_counter"})
_RELEASES = frozenset({"seal_data", "seal_migratable_data"})


class CounterDisciplineRule(Rule):
    rule_id = "SEC005"
    title = "Monotonic-counter increment must precede sealed-state release"
    requirement = "R4"
    fix_hint = (
        "move the increment_*_counter call above the seal so the released "
        "blob is bound to the already-advanced counter value"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in functions_of(module.tree):
            increments: list[int] = []
            releases: list[tuple[int, object]] = []
            for call in calls_in(func):
                name = terminal_name(call.func)
                if name in _INCREMENTS:
                    increments.append(call.lineno)
                elif name in _RELEASES:
                    releases.append((call.lineno, call))
            if not increments or not releases:
                continue
            first_increment = min(increments)
            for line, call in releases:
                if line < first_increment:
                    yield module.finding(
                        self,
                        call,
                        f"sealed state released at line {line} before the "
                        f"counter increment at line {first_increment} — a "
                        "crash between them leaves a replayable stale blob "
                        "(Section III rollback)",
                    )
