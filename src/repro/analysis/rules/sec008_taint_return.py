"""SEC008 — secret-derived values must not cross the boundary via returns.

Requirement R1 closes every exit, not just the loud ones SEC001 watches
(``print``, logging, OCALL arguments).  The quiet exits are *returns*: an
``@ecall`` method's return value lands in untrusted host memory, a
``Network``-object send puts bytes on the adversary's wire, and a
``storage``-object write persists them on the adversary's disk.  CTR
(Nakatsuka et al.) and the cloning study both found real leaks of exactly
this shape — a secret laundered through an innocent-looking helper's return
value.

This rule runs the shared taint engine (``analysis/dataflow.py``) over
every trusted function: secret-named reads (``msk``, ``*_key``, ``secret``,
``private`` …) are sources, sealing/AEAD/KDF/MAC calls are sanitizers
(:data:`repro.analysis.summaries.SANITIZER_RE`), and helper calls apply the
callee's summary — so ``return self._get_msk()`` is flagged with the full
multi-hop trace even though no secret name appears at the return site.

Flagged, in trusted-zone modules:

* an ``@ecall`` method whose return value carries secret taint,
* a secret-tainted argument to a network-ish ``send``/``sendall`` (secure
  channels *encrypt* inside ``send`` and are recognized as sanitizing),
* a secret-tainted argument to a storage-ish ``write``/``store``.

Not flagged: values that passed a sanitizer, parameter-derived values (the
caller already had them), and untrusted-zone code (nothing there is a
secret by construction — SEC001/SEC002 police that boundary).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ProjectRule, terminal_name
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.summaries import param_index

#: Receiver-name fragments that mark a ``send`` as hitting the untrusted
#: wire.  A ``channel.send`` is the attested secure channel — it encrypts
#: internally and is therefore a legal exit.
_NETWORK_HINTS = ("network", "net", "sock", "wire", "transport")
_CHANNEL_HINTS = ("channel", "chan", "session")
_STORAGE_HINTS = ("storage", "store", "disk", "file", "db")

_SEND_NAMES = frozenset({"send", "sendall", "send_to", "post", "transmit"})
_WRITE_NAMES = frozenset({"write", "write_bytes", "store", "store_atomic", "put"})


def _receiver_text(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return terminal_name(call.func.value).lower()
    return ""


def _is_network_send(call: ast.Call) -> bool:
    if terminal_name(call.func) not in _SEND_NAMES:
        return False
    receiver = _receiver_text(call)
    if any(hint in receiver for hint in _CHANNEL_HINTS):
        return False  # secure channel: encrypts inside send
    return any(hint in receiver for hint in _NETWORK_HINTS)


def _is_storage_write(call: ast.Call) -> bool:
    if terminal_name(call.func) not in _WRITE_NAMES:
        return False
    receiver = _receiver_text(call)
    return any(hint in receiver for hint in _STORAGE_HINTS)


class TaintedReturnRule(ProjectRule):
    rule_id = "SEC008"
    title = "Secret-derived values must not reach ECALL returns, network sends, or storage writes unsealed"
    requirement = "R1"
    fix_hint = (
        "seal the value before it leaves trusted code "
        "(seal_data / seal_migratable_data) or return a sealed/derived blob "
        "instead of the raw secret"
    )

    def check_project(self, project) -> Iterator[Finding]:
        from repro.analysis.dataflow import TaintTracker

        summaries = getattr(project, "summaries", {})
        for fn in project.functions.values():
            if fn.is_context or fn.module.zone != "trusted":
                continue
            flow = TaintTracker(
                project, fn, summaries=summaries, name_seed_params=False
            ).run()
            yield from self._check_returns(project, fn, flow)
            yield from self._check_calls(fn, flow)

    # ------------------------------------------------------------- returns
    def _check_returns(self, project, fn, flow) -> Iterator[Finding]:
        if not fn.is_ecall:
            return
        for event in flow.returns:
            for taint in self._real_taints(event.taints):
                yield self._finding(
                    fn,
                    event.node,
                    taint,
                    f"ECALL {fn.qualname!r} returns a value derived from "
                    f"secret {taint.label!r} — the return lands in untrusted "
                    "host memory unsealed",
                )

    # --------------------------------------------------------------- sinks
    def _check_calls(self, fn, flow) -> Iterator[Finding]:
        for event in flow.calls:
            kind = None
            if _is_network_send(event.node):
                kind = "network send"
            elif _is_storage_write(event.node):
                kind = "storage write"
            if kind is None:
                continue
            all_taints = list(event.arg_taints) + list(event.kw_taints.values())
            for taints in all_taints:
                for taint in self._real_taints(taints):
                    yield self._finding(
                        fn,
                        event.node,
                        taint,
                        f"value derived from secret {taint.label!r} reaches a "
                        f"{kind} ({terminal_name(event.node.func)}) unsealed",
                    )

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _real_taints(taints):
        """Secret taints only — parameter markers are the caller's problem."""
        return sorted(
            (t for t in taints if param_index(t.label) is None),
            key=lambda t: t.label,
        )

    def _finding(self, fn, node, taint, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        sink = TraceStep(
            path=fn.module.display_path,
            line=line,
            text=fn.module.line_text(line),
            note="crosses the boundary here",
        )
        return Finding(
            path=fn.module.display_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            hint=self.fix_hint,
            text=fn.module.line_text(line),
            trace=tuple(taint.steps) + (sink,),
        )
