"""SEC003 — GCM/CTR encryption must never see a constant or reused IV.

Every confidentiality mechanism in the reproduction — native sealing, MSK
sealing (Listing 2), the attested secure channel — is AES-GCM, and GCM's
security collapses completely under nonce reuse (two ciphertexts under one
(key, IV) leak the XOR of plaintexts *and* the GHASH authentication key).
The legitimate IV constructions in the tree are ``rng.random_bytes(12)`` and
the channel's sequence-derived ``b"\\x00"*4 + seq.to_bytes(8, "big")``;
both are non-constant expressions.

Flagged, for calls to ``encrypt``/``seal`` (first positional argument or
``iv=``/``nonce=`` keyword):

* an IV expression that is fully constant (``b"\\x00" * 12``),
* an IV variable whose most recent assignment in the function is constant,
* the same IV variable used by two encrypt calls in one function without a
  reassignment in between (reuse under the same key).

Decryption calls are exempt: verifying with a fixed IV is the protocol
replaying what the encryptor chose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    Rule,
    SourceModule,
    calls_in,
    functions_of,
    is_constant_expr,
    terminal_name,
)
from repro.analysis.findings import Finding

_ENCRYPT_NAMES = frozenset({"encrypt", "seal"})


def _iv_argument(call: ast.Call) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg in {"iv", "nonce"}:
            return kw.value
    if call.args:
        return call.args[0]
    return None


def _assignments_of(scope: ast.AST) -> dict[str, list[tuple[int, ast.AST]]]:
    """name → [(line, value expression)] for simple assignments in a scope."""
    table: dict[str, list[tuple[int, ast.AST]]] = {}
    for node in ast.walk(scope):
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                table.setdefault(target.id, []).append((node.lineno, value))
    return table


class NonceHygieneRule(Rule):
    rule_id = "SEC003"
    title = "No constant or reused IVs in GCM/CTR encryption"
    requirement = "R1"
    fix_hint = (
        "derive the IV from fresh randomness (sdk.random_bytes(12)) or a "
        "strictly increasing sequence number bound to this key"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree, *functions_of(module.tree)]
        seen_bodies: set[int] = set()
        for scope in scopes:
            if id(scope) in seen_bodies:
                continue
            seen_bodies.add(id(scope))
            assignments = _assignments_of(scope)
            # last encrypt call line per IV variable name, for reuse detection
            last_use: dict[str, int] = {}
            for call in calls_in(scope):
                if isinstance(scope, ast.Module) and self._inside_function(module, call):
                    continue  # handled in the function's own scope pass
                name = terminal_name(call.func)
                if name not in _ENCRYPT_NAMES:
                    continue
                iv = _iv_argument(call)
                if iv is None:
                    continue
                if is_constant_expr(iv):
                    yield module.finding(
                        self,
                        call,
                        f"constant IV passed to {name}() — GCM/CTR security "
                        "requires a unique IV per encryption under one key",
                    )
                    continue
                if not isinstance(iv, ast.Name):
                    continue
                history = assignments.get(iv.id, [])
                before = [entry for entry in history if entry[0] <= call.lineno]
                if before and is_constant_expr(before[-1][1]):
                    yield module.finding(
                        self,
                        call,
                        f"IV variable {iv.id!r} holds a compile-time constant "
                        f"at this {name}() call",
                    )
                    continue
                previous = last_use.get(iv.id)
                if previous is not None:
                    reassigned = any(previous < line <= call.lineno for line, _ in history)
                    if not reassigned:
                        yield module.finding(
                            self,
                            call,
                            f"IV variable {iv.id!r} reused by a second "
                            f"{name}() call without reassignment (nonce reuse)",
                        )
                last_use[iv.id] = call.lineno
        return

    @staticmethod
    def _inside_function(module: SourceModule, call: ast.Call) -> bool:
        for func in functions_of(module.tree):
            if func.lineno <= call.lineno <= (func.end_lineno or func.lineno):
                return True
        return False
