"""SEC003 — GCM/CTR encryption must never see a constant or reused IV.

Every confidentiality mechanism in the reproduction — native sealing, MSK
sealing (Listing 2), the attested secure channel — is AES-GCM, and GCM's
security collapses completely under nonce reuse (two ciphertexts under one
(key, IV) leak the XOR of plaintexts *and* the GHASH authentication key).
The legitimate IV constructions in the tree are ``rng.random_bytes(12)`` and
the channel's sequence-derived ``b"\\x00"*4 + seq.to_bytes(8, "big")``;
both are non-constant expressions.

Flagged, for calls to ``encrypt``/``seal`` (first positional argument or
``iv=``/``nonce=`` keyword):

* an IV expression that is fully constant (``b"\\x00" * 12``),
* an IV variable whose most recent assignment in the function is constant,
* the same IV variable used by two encrypt calls in one function without a
  reassignment in between (reuse under the same key).

Since PR-6 the rule also follows the call graph (function summaries from
:mod:`repro.analysis.dataflow`), so laundering the violation through a
helper no longer hides it:

* an IV produced by a helper whose every return is a compile-time constant
  (``make_iv()`` → ``b"\\x00" * 12``) is a constant IV,
* a helper that passes its parameter to an encrypt call as the IV counts as
  an *IV use* of the caller's variable — one variable reaching two such
  uses (two helper calls, helper + direct encrypt, or one helper that
  encrypts twice with the same nonce parameter) without reassignment is
  nonce reuse, exactly as if the encrypts were inline.

Decryption calls are exempt: verifying with a fixed IV is the protocol
replaying what the encryptor chose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    ProjectRule,
    SourceModule,
    calls_in,
    functions_of,
    is_constant_expr,
    terminal_name,
)
from repro.analysis.findings import Finding
from repro.analysis.summaries import ENCRYPT_NAMES

_ENCRYPT_NAMES = ENCRYPT_NAMES


def _iv_argument(call: ast.Call) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg in {"iv", "nonce"}:
            return kw.value
    if call.args:
        return call.args[0]
    return None


def _assignments_of(scope: ast.AST) -> dict[str, list[tuple[int, ast.AST]]]:
    """name → [(line, value expression)] for simple assignments in a scope."""
    table: dict[str, list[tuple[int, ast.AST]]] = {}
    for node in ast.walk(scope):
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                table.setdefault(target.id, []).append((node.lineno, value))
    return table


class NonceHygieneRule(ProjectRule):
    rule_id = "SEC003"
    title = "No constant or reused IVs in GCM/CTR encryption"
    requirement = "R1"
    fix_hint = (
        "derive the IV from fresh randomness (sdk.random_bytes(12)) or a "
        "strictly increasing sequence number bound to this key"
    )

    def check_project(self, project) -> Iterator[Finding]:
        self._project = project
        self._summaries = getattr(project, "summaries", {})
        self._site_cache = None
        for module in project.analyzed_modules():
            yield from self._check_module(module)

    # ----------------------------------------------------- summary helpers
    def _call_summaries(self, module: SourceModule, call: ast.Call) -> list:
        """Summaries of the project functions this call resolves to."""
        site = self._sites_by_module(module).get(id(call))
        if site is None:
            return []
        return [
            self._summaries[callee]
            for callee in site.callees
            if callee in self._summaries
        ]

    def _sites_by_module(self, module: SourceModule) -> dict:
        cache = getattr(self, "_site_cache", None)
        if cache is None:
            cache = {}
            for site in self._project.call_sites:
                cache.setdefault(site.module.display_path, {})[id(site.node)] = site
            self._site_cache = cache
        return cache.get(module.display_path, {})

    def _returns_constant(self, module: SourceModule, expr: ast.AST) -> bool:
        """Is ``expr`` a call to a helper whose every return is constant?"""
        if not isinstance(expr, ast.Call):
            return False
        summaries = self._call_summaries(module, expr)
        return bool(summaries) and all(s.returns_constant for s in summaries)

    def _helper_iv_uses(self, module: SourceModule, call: ast.Call) -> dict[str, int]:
        """variable name → number of encrypt calls it reaches as the IV
        *inside* the called helper (via the helper's summary)."""
        summaries = self._call_summaries(module, call)
        if not summaries:
            return {}
        uses: dict[str, int] = {}
        for summary in summaries:
            callee_fn = self._project.function_at(summary.fid)
            if callee_fn is None or not summary.iv_param_uses:
                continue
            offset = 1 if callee_fn.class_name else 0
            for pos, arg in enumerate(call.args):
                if not isinstance(arg, ast.Name):
                    continue
                count = summary.iv_param_uses.get(pos + offset, 0)
                if count:
                    uses[arg.id] = uses.get(arg.id, 0) + count
            params = callee_fn.params
            for kw in call.keywords:
                if kw.arg is None or not isinstance(kw.value, ast.Name):
                    continue
                if kw.arg in params:
                    count = summary.iv_param_uses.get(params.index(kw.arg), 0)
                    if count:
                        uses[kw.value.id] = uses.get(kw.value.id, 0) + count
        return uses

    # ------------------------------------------------------------- checking
    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree, *functions_of(module.tree)]
        seen_bodies: set[int] = set()
        for scope in scopes:
            if id(scope) in seen_bodies:
                continue
            seen_bodies.add(id(scope))
            assignments = _assignments_of(scope)
            # cumulative IV-use count per variable name, for reuse detection
            use_count: dict[str, int] = {}
            last_use: dict[str, int] = {}
            for call in calls_in(scope):
                if isinstance(scope, ast.Module) and self._inside_function(module, call):
                    continue  # handled in the function's own scope pass
                name = terminal_name(call.func)
                if name in _ENCRYPT_NAMES:
                    yield from self._check_encrypt(
                        module, call, name, assignments, use_count, last_use
                    )
                    continue
                # A call to a helper that encrypts with a parameter as the
                # IV is an IV *use* of the variables passed to it.
                for var, count in self._helper_iv_uses(module, call).items():
                    yield from self._account_uses(
                        module, call, f"{name} (helper)", var, count,
                        assignments, use_count, last_use,
                    )
        return

    def _check_encrypt(
        self, module, call, name, assignments, use_count, last_use
    ) -> Iterator[Finding]:
        iv = _iv_argument(call)
        if iv is None:
            return
        if is_constant_expr(iv):
            yield module.finding(
                self,
                call,
                f"constant IV passed to {name}() — GCM/CTR security "
                "requires a unique IV per encryption under one key",
            )
            return
        if self._returns_constant(module, iv):
            yield module.finding(
                self,
                call,
                f"IV passed to {name}() comes from "
                f"{terminal_name(iv.func)}(), whose every return is a "
                "compile-time constant — a constant IV by one hop",
            )
            return
        if not isinstance(iv, ast.Name):
            return
        history = assignments.get(iv.id, [])
        before = [entry for entry in history if entry[0] <= call.lineno]
        if before and is_constant_expr(before[-1][1]):
            yield module.finding(
                self,
                call,
                f"IV variable {iv.id!r} holds a compile-time constant "
                f"at this {name}() call",
            )
            return
        if before and self._returns_constant(module, before[-1][1]):
            yield module.finding(
                self,
                call,
                f"IV variable {iv.id!r} holds the result of "
                f"{terminal_name(before[-1][1].func)}(), whose every return "
                "is a compile-time constant — a constant IV by one hop",
            )
            return
        yield from self._account_uses(
            module, call, name, iv.id, 1, assignments, use_count, last_use
        )

    def _account_uses(
        self, module, call, name, var, count, assignments, use_count, last_use
    ) -> Iterator[Finding]:
        history = assignments.get(var, [])
        previous = last_use.get(var)
        if previous is not None:
            reassigned = any(previous < line <= call.lineno for line, _ in history)
            if reassigned:
                use_count[var] = 0
        total = use_count.get(var, 0) + count
        if total >= 2 and use_count.get(var, 0) < 2:
            if count >= 2:
                yield module.finding(
                    self,
                    call,
                    f"IV variable {var!r} reaches {count} encrypt calls "
                    f"inside {name}() with no reassignment possible "
                    "(nonce reuse through a helper)",
                )
            else:
                yield module.finding(
                    self,
                    call,
                    f"IV variable {var!r} reused by a second "
                    f"{name}() call without reassignment (nonce reuse)",
                )
        use_count[var] = total
        last_use[var] = call.lineno

    @staticmethod
    def _inside_function(module: SourceModule, call: ast.Call) -> bool:
        for func in functions_of(module.tree):
            if func.lineno <= call.lineno <= (func.end_lineno or func.lineno):
                return True
        return False
