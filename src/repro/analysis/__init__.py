"""``repro.analysis`` — AST-based static analysis for the paper's invariants.

The reproduction's security argument (Requirements R1-R4, Sections IV-VI)
rests on properties no Python type checker can see: key material never
crosses the enclave boundary unsealed, GCM nonces are unique, monotonic
counters advance before sealed state is released, and the Migration Library
only moves through its legal protocol states.  This package machine-checks
them on every run:

* :mod:`repro.analysis.engine` — file walking, pragma suppression, rule
  dispatch (stdlib ``ast``, zero dependencies);
* :mod:`repro.analysis.callgraph` — project-wide symbol table and call
  graph, including the ``Enclave.ecall("name", ...)`` dispatch edge;
* :mod:`repro.analysis.summaries` / :mod:`repro.analysis.dataflow` —
  per-function taint summaries and the interprocedural taint tracker;
* :mod:`repro.analysis.rules` — the SEC001-SEC010 catalog;
* :mod:`repro.analysis.baseline` — accepted legacy findings;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` / ``repro-analyze``.

Suppress a justified finding in place with ``# repro: ignore[SEC00x]`` plus
a comment saying why the flow is safe.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisEngine, SourceModule, zone_for
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ALL_RULE_CLASSES, default_rules


def analyze_source(source: str, display_path: str = "module.py"):
    """Analyze one source text with the default rules (test entry point)."""
    return AnalysisEngine().analyze_source(source, display_path)


def analyze_paths(paths):
    """Analyze files/directories with the default rules."""
    return AnalysisEngine().analyze_paths(paths)


__all__ = [
    "ALL_RULE_CLASSES",
    "AnalysisEngine",
    "Baseline",
    "Finding",
    "Severity",
    "SourceModule",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "zone_for",
]
