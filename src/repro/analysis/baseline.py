"""Baseline file: accepted pre-existing findings, checked into the repo.

The baseline lets the analyzer gate CI on **new** findings while a
legacy finding is being worked off.  Entries are keyed on
``(rule, path, stripped source-line text)`` with a count, not on line
numbers, so unrelated edits that shift code do not invalidate the file.
Version 2 entries additionally carry the finding's *flow fingerprint*
(:attr:`repro.analysis.findings.Finding.fingerprint`): two different taint
paths landing on the same sink line stay distinguishable, and a baselined
flow stops matching once the flow itself changes.  Version-1 files still
load — their entries carry an empty fingerprint, which matches any flow
(wildcard), preserving old suppressions.

Entries whose file no longer exists are dead weight that would silently
re-suppress findings if the path ever came back; :meth:`Baseline.
prune_missing` drops them and the CLI reports the prune count.
``--update-baseline`` rewrites the file from the current tree; an empty
baseline (the goal state, and this repo's state) means every finding fails
the run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE_NAME = ".analysis-baseline.json"
_VERSION = 2
_READABLE_VERSIONS = (1, 2)

#: Entry key: (rule, path, text, fingerprint); fingerprint "" = wildcard.
Key = tuple


@dataclass
class Baseline:
    """Multiset of accepted findings."""

    entries: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------ I/O
    @classmethod
    def load(cls, path: str | Path | None) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries: Counter = Counter()
        for item in data.get("entries", []):
            key = (
                item["rule"],
                item["path"],
                item["text"],
                item.get("fingerprint", ""),
            )
            entries[key] += int(item.get("count", 1))
        return cls(entries=entries)

    def write(self, path: str | Path) -> None:
        items = [
            {
                "rule": rule,
                "path": file_path,
                "text": text,
                "fingerprint": fingerprint,
                "count": count,
            }
            for (rule, file_path, text, fingerprint), count in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "entries": items}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------- pruning
    def prune_missing(self, root: str | Path | None = None) -> int:
        """Drop entries whose file no longer exists; returns entries pruned.

        Paths are resolved relative to ``root`` (default: the current
        working directory, which is how the analyzer records them).
        """
        base = Path(root) if root is not None else Path.cwd()
        pruned = 0
        for key in list(self.entries):
            path = Path(key[1])
            if not path.is_absolute():
                path = base / path
            if not path.exists():
                pruned += self.entries.pop(key)
        return pruned

    # ------------------------------------------------------------- matching
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: Counter = Counter()
        for finding in findings:
            entries[finding.baseline_key + (finding.fingerprint,)] += 1
        return cls(entries=entries)

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, suppressed-count) against this baseline."""
        remaining = Counter(self.entries)
        new: list[Finding] = []
        suppressed = 0
        for finding in sorted(findings):
            exact = finding.baseline_key + (finding.fingerprint,)
            wildcard = finding.baseline_key + ("",)
            if remaining.get(exact, 0) > 0:
                remaining[exact] -= 1
                suppressed += 1
            elif remaining.get(wildcard, 0) > 0:
                remaining[wildcard] -= 1
                suppressed += 1
            else:
                new.append(finding)
        return new, suppressed
