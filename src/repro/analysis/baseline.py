"""Baseline file: accepted pre-existing findings, checked into the repo.

The baseline lets the analyzer gate CI on **new** findings while a
legacy finding is being worked off.  Entries are keyed on
``(rule, path, stripped source-line text)`` with a count, not on line
numbers, so unrelated edits that shift code do not invalidate the file.
``--update-baseline`` rewrites it from the current tree; an empty baseline
(the goal state, and this repo's state) means every finding fails the run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE_NAME = ".analysis-baseline.json"
_VERSION = 1


@dataclass
class Baseline:
    """Multiset of accepted findings."""

    entries: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------ I/O
    @classmethod
    def load(cls, path: str | Path | None) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries: Counter = Counter()
        for item in data.get("entries", []):
            key = (item["rule"], item["path"], item["text"])
            entries[key] += int(item.get("count", 1))
        return cls(entries=entries)

    def write(self, path: str | Path) -> None:
        items = [
            {"rule": rule, "path": file_path, "text": text, "count": count}
            for (rule, file_path, text), count in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "entries": items}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------- matching
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: Counter = Counter()
        for finding in findings:
            entries[finding.baseline_key] += 1
        return cls(entries=entries)

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, suppressed-count) against this baseline."""
        remaining = Counter(self.entries)
        new: list[Finding] = []
        suppressed = 0
        for finding in sorted(findings):
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                new.append(finding)
        return new, suppressed
