"""Findings model for the static-analysis subsystem.

A :class:`Finding` is one rule violation at one source location.  Findings
carry everything a reviewer needs to act (rule id, severity, location,
message, fix hint) plus the stripped source-line text, which is what the
baseline matches on — line *text* survives unrelated edits that shift line
numbers, so a baseline does not rot every time a file grows.

Interprocedural findings additionally carry a ``trace``: the def→use hops
(:class:`TraceStep`) that prove the flow, printed by ``--explain`` and
folded into the finding's :attr:`Finding.fingerprint` so two distinct flows
landing on the same sink line stay distinguishable in the baseline.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding blocks a merge."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class TraceStep:
    """One hop of a dataflow trace: where a tainted value moved."""

    path: str
    line: int
    text: str  # stripped source line
    note: str  # e.g. "secret 'msk' read", "returned by helper()"

    def format_text(self) -> str:
        return f"{self.path}:{self.line}: {self.note}\n        {self.text}"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    hint: str = field(default="", compare=False)
    text: str = field(default="", compare=False)  # stripped source line
    trace: tuple = field(default=(), compare=False)  # tuple[TraceStep, ...]

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-number-independent identity used by the baseline file."""
        return (self.rule, self.path, self.text)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent flow identity: rule + path + sink text +
        the trace's hop notes.  Stable across edits that only move code."""
        digest = hashlib.sha256()
        digest.update(f"{self.rule}|{self.path}|{self.text}".encode())
        for step in self.trace:
            digest.update(f"|{step.path}|{step.note}".encode())
        return digest.hexdigest()[:16]

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "text": self.text,
            "fingerprint": self.fingerprint,
        }
        if self.trace:
            payload["trace"] = [
                {
                    "path": step.path,
                    "line": step.line,
                    "text": step.text,
                    "note": step.note,
                }
                for step in self.trace
            ]
        return payload

    def format_text(self, explain: bool = False) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.severity.value}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        if explain and self.trace:
            out += "\n    flow:"
            for step in self.trace:
                out += f"\n      {step.format_text()}"
        return out
