"""Findings model for the static-analysis subsystem.

A :class:`Finding` is one rule violation at one source location.  Findings
carry everything a reviewer needs to act (rule id, severity, location,
message, fix hint) plus the stripped source-line text, which is what the
baseline matches on — line *text* survives unrelated edits that shift line
numbers, so a baseline does not rot every time a file grows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding blocks a merge."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    hint: str = field(default="", compare=False)
    text: str = field(default="", compare=False)  # stripped source line

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-number-independent identity used by the baseline file."""
        return (self.rule, self.path, self.text)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "text": self.text,
        }

    def format_text(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.severity.value}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out
