"""Command-line interface: ``python -m repro.analysis`` / ``repro-analyze``.

Exit codes: 0 — clean (modulo baseline and pragmas); 1 — findings; 2 —
usage or I/O error.  ``--format json`` emits a machine-readable report and
``--format sarif`` a SARIF 2.1.0 log for code-scanning UIs;
``--update-baseline`` rewrites the baseline from the current tree and exits
0.  ``--rule`` restricts reporting to the named rules, ``--explain`` prints
the def→use dataflow trace under each finding that has one, and
``--changed-only`` reports only findings in files touched per ``git diff``
(the whole project is still parsed, so cross-function flows into a changed
file are not missed).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import AnalysisEngine
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ALL_RULE_CLASSES

DEFAULT_PATHS = ("src/repro",)

_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Interprocedural enclave-boundary and secret-flow analyzer for "
            "the SGX-migration reproduction (rules SEC001-SEC010)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="SEC00x",
        help="report only the named rule(s); repeatable",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the def->use dataflow trace under each finding",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only findings in files changed per git (diff vs HEAD "
            "plus untracked); the full project is still analyzed"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _print_catalog(stream) -> None:
    for cls in ALL_RULE_CLASSES:
        entry = cls.catalog_entry()
        print(
            f"{entry['rule']}  [{entry['requirement']}]  "
            f"{entry['severity']}: {entry['title']}",
            file=stream,
        )


def _changed_files() -> set[str] | None:
    """Repo-relative paths changed vs HEAD plus untracked; None on failure."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    changed = set()
    for out in (diff.stdout, untracked.stdout):
        changed.update(line.strip() for line in out.splitlines() if line.strip())
    return changed


def _sarif_report(findings: list[Finding]) -> dict:
    """A minimal SARIF 2.1.0 log: one run, the full rule catalog, results
    with location + flow fingerprint."""
    rules = [
        {
            "id": cls.rule_id,
            "name": cls.__name__,
            "shortDescription": {"text": cls.title},
            "help": {"text": cls.fix_hint},
            "defaultConfiguration": {"level": _SARIF_LEVEL[cls.severity]},
            "properties": {"requirement": cls.requirement},
        }
        for cls in ALL_RULE_CLASSES
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVEL.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproFlow/v1": finding.fingerprint},
        }
        if finding.trace:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        "physicalLocation": {
                                            "artifactLocation": {"uri": step.path},
                                            "region": {"startLine": step.line},
                                        },
                                        "message": {"text": step.note},
                                    }
                                }
                                for step in finding.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro-analysis",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalog(sys.stdout)
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    known_rules = {cls.rule_id for cls in ALL_RULE_CLASSES} | {"PARSE"}
    selected = None
    if args.rule:
        selected = {rule.upper() for rule in args.rule}
        unknown = selected - known_rules
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(sorted(unknown))} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    engine = AnalysisEngine()
    findings = engine.analyze_paths(args.paths)

    if selected is not None:
        findings = [finding for finding in findings if finding.rule in selected]

    if args.changed_only:
        changed = _changed_files()
        if changed is None:
            print(
                "warning: --changed-only needs git; reporting everything",
                file=sys.stderr,
            )
        else:
            findings = [f for f in findings if f.path in changed]

    if args.update_baseline:
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in {args.baseline}"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    pruned = 0 if args.no_baseline else baseline.prune_missing()
    new, suppressed = baseline.filter(findings)

    if args.format == "json":
        report = {
            "findings": [finding.to_dict() for finding in new],
            "total": len(new),
            "baselined": suppressed,
            "baseline_pruned": pruned,
            "rules": sorted({finding.rule for finding in new}),
        }
        print(json.dumps(report, indent=2))
    elif args.format == "sarif":
        print(json.dumps(_sarif_report(new), indent=2))
    else:
        for finding in new:
            print(finding.format_text(explain=args.explain))
        summary = f"{len(new)} finding(s)"
        if suppressed:
            summary += f", {suppressed} baselined"
        if pruned:
            summary += f", {pruned} stale baseline entr{'y' if pruned == 1 else 'ies'} pruned"
        print(summary if new or suppressed or pruned else "clean: 0 findings")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
