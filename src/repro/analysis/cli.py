"""Command-line interface: ``python -m repro.analysis`` / ``repro-analyze``.

Exit codes: 0 — clean (modulo baseline and pragmas); 1 — findings; 2 —
usage or I/O error.  ``--format json`` emits a machine-readable report for
CI; ``--update-baseline`` rewrites the baseline from the current tree and
exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import AnalysisEngine
from repro.analysis.rules import ALL_RULE_CLASSES

DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "AST-based enclave-boundary and secret-flow analyzer for the "
            "SGX-migration reproduction (rules SEC001-SEC007)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _print_catalog(stream) -> None:
    for cls in ALL_RULE_CLASSES:
        entry = cls.catalog_entry()
        print(
            f"{entry['rule']}  [{entry['requirement']}]  "
            f"{entry['severity']}: {entry['title']}",
            file=stream,
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalog(sys.stdout)
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = AnalysisEngine()
    findings = engine.analyze_paths(args.paths)

    if args.update_baseline:
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in {args.baseline}"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    new, suppressed = baseline.filter(findings)

    if args.format == "json":
        report = {
            "findings": [finding.to_dict() for finding in new],
            "total": len(new),
            "baselined": suppressed,
            "rules": sorted({finding.rule for finding in new}),
        }
        print(json.dumps(report, indent=2))
    else:
        for finding in new:
            print(finding.format_text())
        summary = f"{len(new)} finding(s)"
        if suppressed:
            summary += f", {suppressed} baselined"
        print(summary if new or suppressed else "clean: 0 findings")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
