"""Function summaries: the interprocedural compression of the taint engine.

A :class:`FunctionSummary` is everything a *caller* needs to know about a
callee without re-analyzing its body at every call site:

* ``returns_params`` — which parameter positions' taint flows to the return
  value (``def ident(x): return x`` → ``{0}``);
* ``returns_secret`` / ``secret_label`` / ``secret_trace`` — the function
  returns a value derived from a secret it read itself (``return self.msk``),
  with the def→use steps that prove it;
* ``sanitizes`` — the function is a *sanitizer*: its output is safe to
  release even if its inputs were secret (sealing, AEAD encryption, MACs,
  hashes, key derivation, constant-time comparison);
* ``returns_constant`` — every return statement yields a compile-time
  constant (a constant-IV factory, from SEC003's point of view);
* ``iv_param_uses`` — parameter position → number of ``encrypt``/``seal``
  calls that parameter transitively reaches *as the IV argument* (so a
  helper that encrypts twice with one nonce parameter is visible to its
  caller as a nonce reuse of count 2).

Summaries are computed to a bounded fixpoint over the call graph by
:func:`repro.analysis.dataflow.compute_summaries` — recursion and unresolved
calls degrade to the conservative "taint passes through arguments" default,
never to "safe".

The **sanitizer set** is name-based and deliberately small (see DESIGN.md
§13): ``seal`` / AEAD ``encrypt`` / ``mac`` / ``hash`` / ``digest`` /
``derive``-``hkdf``-``kdf`` / ``pseudonym`` / ``constant_time`` compare /
``len``, plus ``public``/``verify``-named accessors (a public half is not a
secret).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Callees whose *result* is safe to release even when arguments are secret.
SANITIZER_RE = re.compile(
    r"seal|encrypt|mac$|hmac|mac_|hash|digest|derive|hkdf|kdf|pseudonym"
    r"|constant_time|len$|public|verify|(^|_)sign($|_)",
    re.IGNORECASE,
)

#: AEAD entry points whose first positional / ``iv=``/``nonce=`` argument is
#: the nonce SEC003 polices.
ENCRYPT_NAMES = frozenset({"encrypt", "seal"})

# --------------------------------------------------------------- secret names
_SECRET_RE = re.compile(
    r"""
    (^|_)msk($|_)          # the Migration Sealing Key itself
    | secret               # member_secret, fuse secrets, ...
    | fuse                 # CPU fuse material
    | (^|_)private($|_)    # schnorr/DH private halves
    | (^|_)priv($|_)
    """,
    re.VERBOSE | re.IGNORECASE,
)

# ``*_key`` is secret unless the name marks it public.
_KEY_RE = re.compile(r"(^|_)key$", re.IGNORECASE)
_PUBLIC_RE = re.compile(r"public|pub($|_)|verify", re.IGNORECASE)


def is_secret_name(name: str) -> bool:
    """Does this identifier name key material (R1's protected class)?"""
    if not name:
        return False
    if _PUBLIC_RE.search(name):
        return False
    return bool(_SECRET_RE.search(name) or _KEY_RE.search(name))


def is_sanitizer_name(name: str) -> bool:
    return bool(name) and bool(SANITIZER_RE.search(name))


#: Label prefix for parameter-marker taints used during summary computation.
PARAM_LABEL = "<param:{index}>"
_PARAM_RE = re.compile(r"^<param:(\d+)>$")


def param_index(label: str) -> int | None:
    """``"<param:2>"`` → ``2``; ``None`` for non-marker labels."""
    match = _PARAM_RE.match(label)
    return int(match.group(1)) if match else None


@dataclass
class FunctionSummary:
    """Caller-visible dataflow facts about one function."""

    fid: str
    returns_params: frozenset[int] = frozenset()
    returns_secret: bool = False
    secret_label: str = ""
    secret_trace: tuple = ()  # tuple[TraceStep, ...]
    sanitizes: bool = False
    returns_constant: bool = False
    iv_param_uses: dict[int, int] = field(default_factory=dict)

    def same_facts(self, other: "FunctionSummary | None") -> bool:
        """Fixpoint comparison (traces excluded: they stabilize with facts)."""
        return (
            other is not None
            and self.returns_params == other.returns_params
            and self.returns_secret == other.returns_secret
            and self.sanitizes == other.sanitizes
            and self.returns_constant == other.returns_constant
            and self.iv_param_uses == other.iv_param_uses
        )
